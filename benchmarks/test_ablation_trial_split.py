"""Ablation: the global/subset trial split (§5.4, Appendix A.2).

The paper splits trials 50/50 "for simplicity because the fidelity
saturates for the number of trials used"; with constrained budgets the
split could be tuned.  This bench sweeps the global fraction in sampled
mode at a saturating budget and confirms the outcome is insensitive —
the empirical justification for the paper's default.
"""

import functools

from _shared import save_result
from repro.core import JigSaw, JigSawConfig
from repro.devices import ibmq_toronto
from repro.experiments import format_table
from repro.metrics import probability_of_successful_trial
from repro.workloads import ghz


@functools.lru_cache(maxsize=1)
def sweep():
    device = ibmq_toronto()
    workload = ghz(12)
    shared = JigSaw(device, JigSawConfig(exact=True), seed=24).compile_global(
        workload.circuit
    )
    results = {}
    for fraction in (0.25, 0.5, 0.75):
        runner = JigSaw(
            device,
            JigSawConfig(global_fraction=fraction, exact=False),
            seed=24,
        )
        result = runner.run(
            workload.circuit, 131_072, global_executable=shared
        )
        results[fraction] = probability_of_successful_trial(
            result.output_pmf, workload.correct_outcomes
        )
    return results


def test_ablation_trial_split(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["Global fraction", "JigSaw PST"],
        [[k, v] for k, v in sorted(results.items())],
        title="Ablation: global/subset trial split on GHZ-12 / IBMQ-Toronto",
    )
    save_result("ablation_trial_split", text)

    values = list(results.values())
    # At saturating budgets the split barely matters (paper's rationale).
    assert max(values) - min(values) < 0.08
