"""Table 6: observed vs maximum outcomes for Graycode-18 at 512K trials.

Paper: only ~17-18.5K of the 256K possible outcomes are ever observed
(6.6-7.2 %) — the bound that keeps JigSaw's post-processing linear.
"""

from _shared import FAST, devices, save_result
from repro.experiments import table6_observed_outcomes, table6_text


def test_table6_observed_outcomes(benchmark):
    trials = 131_072 if FAST else 524_288
    rows = benchmark.pedantic(
        lambda: table6_observed_outcomes(
            devices=devices(), workload_name="Graycode-18", trials=trials, seed=12
        ),
        rounds=1,
        iterations=1,
    )
    save_result("table6_observed_outcomes", table6_text(rows))

    for row in rows:
        assert row.maximum == 1 << 18
        # Far fewer outcomes observed than possible (paper: ~7 %).
        assert row.observed < 0.35 * row.maximum
        assert row.observed > 0
