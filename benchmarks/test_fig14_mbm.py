"""Figure 14: JigSaw versus IBM's matrix-based mitigation (MBM).

Paper: JigSaw alone beats MBM alone on the small QAOA benchmarks, and the
composition (JigSaw + MBM, JigSaw-M + MBM) beats either standalone.
"""

from _shared import save_result
from repro.devices import ibmq_paris, ibmq_toronto
from repro.experiments import figure14_text, run_figure14


def test_figure14_mbm(benchmark):
    rows = benchmark.pedantic(
        lambda: run_figure14(
            devices=[ibmq_toronto(), ibmq_paris()],
            workload_names=("QAOA-8 p1", "QAOA-8 p2", "QAOA-10 p1"),
            seed=14,
            exact=True,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("figure14_mbm", figure14_text(rows))

    for row in rows:
        label = f"{row.device}/{row.workload}"
        # The composition does not trail JigSaw alone...
        assert row.jigsaw_mbm >= 0.95 * row.jigsaw, label
        # ...and beats MBM alone.
        assert row.jigsaw_mbm >= row.mbm, label
    # On average JigSaw alone also beats MBM alone (the paper's ordering).
    mean_jigsaw = sum(r.jigsaw for r in rows) / len(rows)
    mean_mbm = sum(r.mbm for r in rows) / len(rows)
    assert mean_jigsaw > 0.9 * mean_mbm
