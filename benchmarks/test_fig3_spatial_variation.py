"""Figure 3: spatial variation of measurement error on IBMQ-Toronto.

Paper annotations: mean 4.70 %, median 2.76 %, min 0.85 %, max 22.2 %,
with the best qubits scattered across the chip.
"""

import pytest

from _shared import save_result
from repro.devices import ibmq_toronto
from repro.experiments import figure3_spatial_variation, format_table


def test_figure3_spatial_variation(benchmark):
    result = benchmark.pedantic(
        lambda: figure3_spatial_variation(ibmq_toronto()),
        rounds=1,
        iterations=1,
    )
    stats_text = format_table(
        ["Statistic", "Value (%)"],
        [
            ["Mean", result["mean_percent"]],
            ["Median", result["median_percent"]],
            ["Minimum", result["min_percent"]],
            ["Maximum", result["max_percent"]],
        ],
        title="Figure 3: Measurement error rates on IBMQ-Toronto",
        float_format="{:.2f}",
    )
    map_text = format_table(
        ["Qubit", "Percentile bucket"],
        sorted(result["percentile_bucket_by_qubit"].items()),
        title="Per-qubit percentile map",
    )
    save_result("figure3_spatial_variation", stats_text + "\n\n" + map_text)

    assert result["mean_percent"] == pytest.approx(4.70, abs=0.1)
    assert result["median_percent"] == pytest.approx(2.76, abs=0.2)
    assert result["min_percent"] == pytest.approx(0.85, abs=0.05)
    assert result["max_percent"] == pytest.approx(22.2, abs=0.3)
    # A quarter of the chip sits in each percentile bucket.
    buckets = list(result["percentile_bucket_by_qubit"].values())
    assert buckets.count(">75") >= 6
