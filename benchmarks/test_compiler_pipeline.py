"""Perf smoke check: route-once/retarget-many CPM compilation.

A JigSaw-M plan compiles one CPM per subset for every size in 2..5 —
dozens of programs that share a single measurement-free body.  The seed
path pushed each of them through placement+SABRE from scratch; the staged
pipeline routes the global candidates and the deterministic CPM layout
pool once per plan and re-runs only the cheap MeasureRetarget/EpsScore
stages per subset.

Routing is deterministic per content key, so instead of timing wall clock
we count ``route()`` invocations via the per-stage counters and assert

* >= 3x fewer route calls than the legacy (stage-cache-disabled) path,
* the route-once invariant: every route call creates a distinct
  ``(body, layout)`` stage entry — no pair is ever routed twice,
* the two paths produce **bit-for-bit identical** plans.
"""

from __future__ import annotations

import os

from repro.core import JigSawM, JigSawMConfig
from repro.compiler.pipeline import STAGE_ROUTE
from repro.devices import ibmq_toronto
from repro.runtime import CompilationCache, executable_fingerprint
from repro.workloads import workload_by_name

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

SEED = 0
TOTAL_TRIALS = 32_768
#: The standard sweep shape: >= 3 workloads spanning program families.
WORKLOAD_NAMES = ("BV-6", "GHZ-8", "QAOA-8 p1")


def _plan_workloads(make_cache):
    """One JigSaw-M plan per workload; returns (per-workload rows, plans)."""
    rows = []
    plans = []
    for name in WORKLOAD_NAMES:
        runner = JigSawM(
            ibmq_toronto(),
            JigSawMConfig(exact=True),
            seed=SEED,
            cache=make_cache(),
        )
        plan = runner.plan(
            workload_by_name(name).circuit, total_trials=TOTAL_TRIALS
        )
        stats = runner.pipeline.stats
        rows.append(
            {
                "workload": name,
                "num_cpms": plan.num_cpms,
                "route_calls": stats.get("route_calls"),
                "route_hits": stats.get("route_hits"),
                "retargets": stats.get("retargets"),
                "route_entries": runner.pipeline.cache.stage_entries(
                    STAGE_ROUTE
                ),
            }
        )
        plans.append(plan)
    return rows, plans


def _plan_fingerprints(plan):
    return [
        executable_fingerprint(e)
        for e in [plan.global_executable] + plan.cpm_executables
    ]


def test_route_once_retarget_many():
    legacy_rows, legacy_plans = _plan_workloads(CompilationCache.disabled)
    pipeline_rows, pipeline_plans = _plan_workloads(CompilationCache)

    # Bit-for-bit identical ExecutionPlans under the default seeds.
    for legacy_plan, pipeline_plan in zip(legacy_plans, pipeline_plans):
        assert _plan_fingerprints(legacy_plan) == _plan_fingerprints(
            pipeline_plan
        )
        assert legacy_plan.subsets == pipeline_plan.subsets

    legacy_total = sum(row["route_calls"] for row in legacy_rows)
    pipeline_total = sum(row["route_calls"] for row in pipeline_rows)

    # The headline: >= 3x fewer route() calls than the legacy path.
    assert pipeline_total * 3 <= legacy_total, (
        f"route-once saved too little: {pipeline_total} vs {legacy_total}"
    )

    for row in pipeline_rows:
        # Route-once invariant: every call created a distinct stage entry,
        # so no (body, layout) pair was routed twice within a plan.
        assert row["route_calls"] == row["route_entries"], row
        # The bulk of the plan's CPMs rode the cache, not the router.
        assert row["route_hits"] > row["route_calls"], row

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "compiler_pipeline.txt"), "w"
    ) as handle:
        handle.write(
            "JigSaw-M sweep route() calls (legacy vs staged pipeline)\n"
            f"workloads: {', '.join(WORKLOAD_NAMES)}\n"
            f"trials/plan: {TOTAL_TRIALS}, seed: {SEED}\n\n"
            "workload      CPMs  legacy-routes  pipeline-routes  retargets\n"
        )
        for legacy_row, pipeline_row in zip(legacy_rows, pipeline_rows):
            handle.write(
                f"{pipeline_row['workload']:<12}"
                f"{pipeline_row['num_cpms']:>6}"
                f"{legacy_row['route_calls']:>15}"
                f"{pipeline_row['route_calls']:>17}"
                f"{pipeline_row['retargets']:>11}\n"
            )
        handle.write(
            f"\ntotal routes: {legacy_total} -> {pipeline_total} "
            f"({legacy_total / pipeline_total:.1f}x fewer; plans "
            "bit-for-bit identical)\n"
        )
