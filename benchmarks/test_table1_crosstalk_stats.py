"""Table 1: isolated vs simultaneous measurement error rates (Sycamore).

Paper values (%): isolated 2.60 / 6.14 / 5.70 / 11.7, simultaneous
3.30 / 7.73 / 7.10 / 20.9 (min / average / median / max).
"""

import pytest

from _shared import save_result
from repro.experiments import format_table, table1_measurement_stats


def test_table1_measurement_stats(benchmark):
    stats = benchmark.pedantic(table1_measurement_stats, rounds=1, iterations=1)
    text = format_table(
        ["Measurement Mode", "Min", "Average", "Median", "Max"],
        [
            [
                mode.capitalize(),
                values["min"],
                values["average"],
                values["median"],
                values["max"],
            ]
            for mode, values in stats.items()
        ],
        title="Table 1: Measurement Errors on Google Sycamore (%)",
        float_format="{:.2f}",
    )
    save_result("table1_crosstalk_stats", text)

    isolated = stats["isolated"]
    simultaneous = stats["simultaneous"]
    # Paper Table 1 shape and magnitudes.
    assert isolated["average"] == pytest.approx(6.14, abs=0.3)
    assert isolated["max"] == pytest.approx(11.7, abs=0.5)
    assert simultaneous["average"] == pytest.approx(7.73, abs=0.8)
    assert simultaneous["max"] == pytest.approx(20.9, abs=2.5)
    # Simultaneous readout is uniformly worse (the 1.26x claim).
    ratio = simultaneous["average"] / isolated["average"]
    assert 1.1 <= ratio <= 1.5
