"""Perf smoke check: the serving tier scales throughput with workers.

A 3-tenant stream of unique jobs (distinct seeds — no memoization, no
coalescing, so every job carries real work) is served twice:

1. **PR 5 single-drain loop**: one ``MitigationService``, one drain —
   every channel evaluation happens on one lane, back to back.
2. **Serving tier at 4 workers**: one ``ServiceSupervisor`` with
   round-robin placement — submissions are dealt across 4 drain workers,
   each with a private engine, and the stream is arranged so every lane
   receives one job per wave (balanced by construction).

Throughput is asserted via the repo's deterministic cost model, not wall
clock (CI machines vary; this container has one core): the single-drain
loop's makespan is the **total** channel evaluations, the tier's is the
**busiest lane's** — deterministic because round-robin placement pins
every job to a lane by submission order.  With 4 balanced lanes the
modeled speedup is ~4x; >= 2x is asserted.  Payloads must be bit-for-bit
identical between the two architectures (the determinism contract), and
the tier's total work must equal the single drain's (concurrency adds
zero evaluations).

Artifacts: ``results/service_tier.txt`` (human table) and
``results/BENCH_service_tier.json`` (machine-readable counts), both
byte-stable across runs and machines.
"""

from __future__ import annotations

import time

from _shared import save_bench_json, save_result
from repro.devices import ibmq_toronto
from repro.service import JobSpec, MitigationService
from repro.service.tier import ServiceSupervisor

SEED_BASE = 100
TIER_WORKERS = 4
TENANTS = ("alice", "bob", "carol")
#: 16 *distinct* workloads in 4 waves of 4: distinct programs mean no
#: memoization and no cross-job coalescing in either architecture, so
#: the stream measures raw drain throughput.  Each wave is one family
#: with sizes 6..9, rotated per wave (a Latin square), so round-robin
#: placement deals every lane one workload of each size band — the
#: lanes balance by construction.
CATALOG = (
    ("GHZ-6", "GHZ-7", "GHZ-8", "GHZ-9"),
    ("BV-7", "BV-8", "BV-9", "BV-6"),
    ("QAOA-8 p1", "QAOA-9 p1", "QAOA-6 p1", "QAOA-7 p1"),
    ("BV-13", "BV-10", "BV-11", "BV-12"),
)


def job_stream():
    """16 unique jobs: 4 waves x 4 lanes, tenants interleaved."""
    specs = []
    for wave, names in enumerate(CATALOG):
        for slot, workload in enumerate(names):
            index = wave * TIER_WORKERS + slot
            specs.append(
                JobSpec(
                    tenant=TENANTS[index % len(TENANTS)],
                    workload=workload,
                    scheme="jigsaw",
                    seed=SEED_BASE + index,
                    exact=True,
                )
            )
    return specs


def test_tier_doubles_modeled_throughput():
    specs = job_stream()
    devices = {"toronto": ibmq_toronto}

    # --- PR 5 single-drain loop. --------------------------------------
    with MitigationService(devices=devices) as service:
        start = time.perf_counter()
        solo_jobs = [service.submit(spec) for spec in specs]
        service.drain()
        solo_seconds = time.perf_counter() - start
        solo_stats = service.service_stats()
    solo_payloads = [job.result for job in solo_jobs]
    serial_evals = solo_stats["backend"]["channel_evals"]

    # --- Serving tier: 4 drain workers, round-robin lanes. ------------
    supervisor = ServiceSupervisor(
        devices=devices, workers=TIER_WORKERS, placement="round_robin"
    )
    supervisor.start()
    try:
        start = time.perf_counter()
        tier_jobs = [supervisor.submit(spec) for spec in specs]
        supervisor.stop(drain=True, timeout=600)
        tier_seconds = time.perf_counter() - start
        stats = supervisor.tier_stats()
    finally:
        supervisor.close()

    # Determinism: bit-for-bit the single-drain payloads, job for job.
    assert [job.result for job in tier_jobs] == solo_payloads
    assert all(job.source == "executed" for job in tier_jobs)

    lane_evals = [
        worker["engine"]["backend"]["channel_evals"]
        for worker in stats["workers"]
    ]
    assert len(lane_evals) == TIER_WORKERS
    assert all(evals > 0 for evals in lane_evals)
    # Concurrency must add zero work: the lanes partition the stream.
    assert sum(lane_evals) == serial_evals

    # Modeled makespan: all evals serial vs the busiest lane.
    makespan = max(lane_evals)
    speedup = serial_evals / makespan
    assert speedup >= 2.0, (
        f"modeled tier speedup {speedup:.2f}x at {TIER_WORKERS} workers "
        f"(lanes {lane_evals} vs {serial_evals} serial) — expected >= 2x"
    )

    save_bench_json(
        "service_tier",
        {
            "workers": TIER_WORKERS,
            "placement": "round_robin",
            "tenants": list(TENANTS),
            "catalog": [list(wave) for wave in CATALOG],
            "jobs": len(specs),
            "serial_channel_evals": serial_evals,
            "lane_channel_evals": lane_evals,
            "modeled_makespan_evals": makespan,
            "modeled_speedup": speedup,
            "asserted_min_speedup": 2.0,
            "retries": stats["jobs"]["retried"],
            "worker_crashes": stats["latency"]["worker_crashes"],
        },
    )
    save_result(
        "service_tier",
        "Serving-tier throughput benchmark (exact mode, modeled)\n"
        f"tenants:   {', '.join(TENANTS)}\n"
        "catalog:   "
        + "; ".join(", ".join(wave) for wave in CATALOG)
        + " (4 waves x 4 lanes, all distinct)\n"
        f"jobs in stream:               {len(specs)}\n"
        f"single-drain channel evals:   {serial_evals} (= modeled makespan)\n"
        f"tier lane channel evals:      {lane_evals}\n"
        f"tier modeled makespan:        {makespan} (busiest lane)\n"
        f"modeled speedup @ 4 workers:  {speedup:.2f}x (>= 2x asserted)\n"
        "(payloads bit-for-bit equal to the single-drain loop; lane "
        "placement is deterministic, so every count above is too; wall "
        "clock measured to stdout)",
    )
    print(
        f"\nwall clock: single-drain {solo_seconds:.2f}s, "
        f"tier {tier_seconds:.2f}s on this machine; modeled speedup "
        f"{speedup:.2f}x at {TIER_WORKERS} workers"
    )
