"""Figure 7: application PST versus number of trials (saturation).

Paper: PST is flat from thousands to millions of trials on IBMQ-Paris —
correlated errors, not sampling noise, limit fidelity.  This justifies
the even global/subset trial split (§5.4).
"""

from _shared import FAST, save_bench_json, save_result
from repro.devices import ibmq_paris
from repro.experiments import figure7_text, run_trials_sweep


def test_figure7_trials_saturation(benchmark):
    workloads = ("GHZ-12", "GHZ-14", "QAOA-10 p1", "QAOA-10 p2")
    ladder = (8_192, 65_536, 524_288) if FAST else (
        8_192, 65_536, 524_288, 2_097_152
    )
    points = benchmark.pedantic(
        lambda: run_trials_sweep(
            device=ibmq_paris(),
            workload_names=workloads,
            trial_ladder=ladder,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("figure7_trials_saturation", figure7_text(points))
    save_bench_json(
        "fig7_trials_saturation",
        {
            "trial_ladder": list(ladder),
            "pst": {
                name: {
                    str(p.trials): round(p.pst, 6)
                    for p in points
                    if p.workload == name
                }
                for name in workloads
            },
        },
    )

    # Saturation: for every workload the PST at the largest trial count is
    # within a small absolute band of the PST at the smallest.
    for name in workloads:
        series = sorted(
            (p for p in points if p.workload == name), key=lambda p: p.trials
        )
        assert abs(series[-1].pst - series[0].pst) < 0.05, name
