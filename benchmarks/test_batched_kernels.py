"""Perf smoke for the array-API batched execution spine (PR 7).

Two measurements, one benchmark file:

1. **Stacked vs per-circuit sweep** — the 3-workload x 3-budget coalesced
   sweep (the shape of `test_parallel_backend`) executed once through the
   per-circuit oracle kernels (``exact_reference=True``, one eval chain
   per request — the seed runtime's behaviour) and once as a single
   coalesced batch on the stacked spine.  Outputs are asserted bit-for-bit
   identical and the stacked path must be **at least 2x faster** in wall
   clock; the deterministic eval counters behind that win (one stacked
   contraction per coalesced group, not B singles) go into the checked-in
   JSON, the machine-dependent seconds to stdout.
2. **Stacked statevector evolution** — a bind-many batch (same gate
   structure, different parameters) evolved as one ``(B, 2**n)``
   contraction per gate position versus B per-circuit loops; measured and
   reported, not asserted (BLAS batching gains are machine-dependent).
"""

from __future__ import annotations

import time

import numpy as np

from _shared import save_bench_json, save_result
from repro.circuits.circuit import QuantumCircuit
from repro.core import JigSaw, JigSawConfig
from repro.devices import ibmq_toronto
from repro.noise.model import NoiseModel
from repro.runtime import LocalExactBackend, ShardedBackend
from repro.sim import StatevectorSimulator
from repro.workloads import workload_by_name

SEED = 0
WORKLOAD_NAMES = ("BV-6", "GHZ-8", "QAOA-8 p1")
TRIAL_BUDGETS = (16_384, 32_768, 65_536)
#: Wall-clock floor asserted for the stacked spine over the per-circuit
#: oracle on the coalesced sweep.
MIN_SPEEDUP = 2.0
#: Best-of-N timing to shave scheduler noise off the smoke assertion.
TIMING_ROUNDS = 3


def sweep_plans(device):
    """One plan per (workload, budget) from fresh, equally-seeded runners."""
    plans = []
    for name in WORKLOAD_NAMES:
        circuit = workload_by_name(name).circuit
        for budget in TRIAL_BUDGETS:
            runner = JigSaw(device, JigSawConfig(exact=True), seed=SEED)
            plans.append(runner.plan(circuit, total_trials=budget))
    return plans


def _run_reference(noise_model, device):
    """Per-circuit oracle: each plan's batch on its own, unstacked."""
    backend = LocalExactBackend(noise_model=noise_model, exact_reference=True)
    plans = sweep_plans(device)
    start = time.perf_counter()
    pmfs = []
    for plan in plans:
        pmfs.extend(backend.execute(plan.requests()))
    return time.perf_counter() - start, pmfs, backend


def _run_stacked(noise_model, device):
    """Stacked spine: the whole sweep as ONE coalesced batch, in-process."""
    backend = ShardedBackend(LocalExactBackend(noise_model=noise_model))
    plans = sweep_plans(device)
    requests = [r for plan in plans for r in plan.requests()]
    start = time.perf_counter()
    pmfs = backend.execute(requests)
    return time.perf_counter() - start, pmfs, backend, len(requests)


def test_stacked_spine_speedup_on_coalesced_sweep():
    device = ibmq_toronto()
    noise_model = NoiseModel.from_device(device)

    reference_seconds = []
    stacked_seconds = []
    for _ in range(TIMING_ROUNDS):
        ref_s, ref_pmfs, ref_backend = _run_reference(noise_model, device)
        stk_s, stk_pmfs, stk_backend, total_requests = _run_stacked(
            noise_model, device
        )
        reference_seconds.append(ref_s)
        stacked_seconds.append(stk_s)
        # Exact mode: stacked + coalesced output is bit-for-bit the oracle's.
        assert [p.as_dict() for p in stk_pmfs] == [
            p.as_dict() for p in ref_pmfs
        ]

    stats = stk_backend.stats()
    # Grouped evals, not B singles: one channel evaluation per coalesced
    # group, stacked contractions covering multiple circuits each.
    assert stats["channel_evals"] == total_requests // len(TRIAL_BUDGETS)
    assert stats["channel_evals"] < total_requests
    assert stats["stacked_evals"] >= 1
    assert stats["stacked_circuits"] > stats["stacked_evals"]
    assert stats["statevector_evals"] == len(WORKLOAD_NAMES)

    best_reference = min(reference_seconds)
    best_stacked = min(stacked_seconds)
    speedup = best_reference / best_stacked
    print(
        f"\nstacked spine: reference {best_reference:.4f}s, "
        f"stacked {best_stacked:.4f}s, speedup {speedup:.2f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"stacked spine speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP:.1f}x floor"
    )

    save_bench_json(
        "batched_kernels",
        {
            "workloads": list(WORKLOAD_NAMES),
            "trial_budgets": list(TRIAL_BUDGETS),
            "requests": total_requests,
            "reference_channel_evals": ref_backend.channel_evals,
            "reference_statevector_evals": ref_backend.statevector_evals,
            "stacked_channel_evals": stats["channel_evals"],
            "stacked_statevector_evals": stats["statevector_evals"],
            "stacked_evals": stats["stacked_evals"],
            "stacked_circuits": stats["stacked_circuits"],
            "shards": stats["shards"],
            "asserted_min_speedup": MIN_SPEEDUP,
        },
    )
    save_result(
        "batched_kernels",
        "Array-API batched execution spine benchmark (exact mode)\n"
        f"workloads: {', '.join(WORKLOAD_NAMES)}\n"
        f"budgets:   {', '.join(str(b) for b in TRIAL_BUDGETS)}\n"
        f"requests in sweep:            {total_requests}\n"
        f"reference channel evals:      {ref_backend.channel_evals}\n"
        f"stacked   channel evals:      {stats['channel_evals']}\n"
        f"stacked   contractions:       {stats['stacked_evals']} "
        f"(covering {stats['stacked_circuits']} circuits)\n"
        f"asserted wall-clock floor:    {MIN_SPEEDUP:.1f}x\n"
        "(outputs bit-for-bit identical; wall clock to stdout)",
    )


def test_stacked_statevector_evolution_measured():
    """Bind-many stack vs per-circuit loop; measured, never asserted."""
    num_qubits = 8
    batch = 64
    rng = np.random.default_rng(SEED)
    circuits = []
    for _ in range(batch):
        qc = QuantumCircuit(num_qubits)
        for q in range(num_qubits):
            qc.ry(float(rng.uniform(0, np.pi)), q)
        for q in range(num_qubits - 1):
            qc.cx(q, q + 1)
        for q in range(num_qubits):
            qc.rz(float(rng.uniform(0, np.pi)), q)
        circuits.append(qc)
    sim = StatevectorSimulator()

    start = time.perf_counter()
    singles = np.stack([sim.statevector(c) for c in circuits])
    per_circuit_seconds = time.perf_counter() - start

    start = time.perf_counter()
    stacked = sim.statevectors_stacked(circuits)
    stacked_seconds = time.perf_counter() - start

    assert (singles == stacked).all()
    print(
        f"\nstatevector batch={batch}: per-circuit "
        f"{per_circuit_seconds:.4f}s, stacked {stacked_seconds:.4f}s "
        f"({per_circuit_seconds / stacked_seconds:.2f}x)"
    )
