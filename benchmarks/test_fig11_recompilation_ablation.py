"""Figure 11: mean relative PST with and without CPM recompilation.

Paper: subsetting alone gives 1.92x mean PST; adding recompilation lifts
it to 2.91x; JigSaw-M with recompilation reaches 3.65x.  EDM stays ~1x.
"""

from _shared import main_results, save_result
from repro.experiments.main_results import figure11_rows, figure11_text


def test_figure11_recompilation(benchmark):
    rows = list(main_results())
    table = benchmark.pedantic(
        lambda: figure11_rows(rows), rounds=1, iterations=1
    )
    save_result("figure11_recompilation", figure11_text(rows))

    for device, edm, no_recomp, with_recomp, jigsaw_m in table:
        # Subsetting alone already beats the baseline on average...
        assert no_recomp > 1.0, device
        # ...recompilation adds on top of it...
        assert with_recomp >= 0.95 * no_recomp, device
        # ...and JigSaw-M tops the chart, with EDM near 1x.
        assert jigsaw_m >= 0.95 * with_recomp, device
        assert edm < no_recomp, device
