"""Figure 8: relative PST of EDM / JigSaw / JigSaw-M on three machines.

Paper: JigSaw improves PST 2.91x on average (up to 7.87x); JigSaw-M 3.65x
(up to 8.42x); EDM barely moves PST.  This bench regenerates the full grid
and the per-device GMean rows.
"""

import math

from _shared import main_results, save_bench_json, save_result
from repro.experiments.main_results import figure8_text


def _gmean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_figure8_relative_pst(benchmark):
    rows = benchmark.pedantic(main_results, rounds=1, iterations=1)
    text = figure8_text(list(rows))
    save_result("figure8_relative_pst", text)

    # Shape assertions mirroring the paper's headline claims.
    by_device = {}
    for row in rows:
        by_device.setdefault(row.device, []).append(row)
    save_bench_json(
        "fig8_relative_pst",
        {
            device: {
                "gmean_jigsaw": round(
                    _gmean([r.relative_pst("jigsaw") for r in device_rows]), 6
                ),
                "gmean_jigsaw_m": round(
                    _gmean([r.relative_pst("jigsaw_m") for r in device_rows]),
                    6,
                ),
                "gmean_edm": round(
                    _gmean([r.relative_pst("edm") for r in device_rows]), 6
                ),
                "workloads": len(device_rows),
            }
            for device, device_rows in by_device.items()
        },
    )
    for device, device_rows in by_device.items():
        jigsaw_gains = [r.relative_pst("jigsaw") for r in device_rows]
        jigsawm_gains = [r.relative_pst("jigsaw_m") for r in device_rows]
        # JigSaw improves PST for the large majority of workloads...
        improved = sum(1 for g in jigsaw_gains if g > 1.0)
        assert improved >= len(jigsaw_gains) - 2, device
        # ...and JigSaw-M does not trail JigSaw on average.
        mean_j = sum(jigsaw_gains) / len(jigsaw_gains)
        mean_m = sum(jigsawm_gains) / len(jigsawm_gains)
        assert mean_m >= 0.95 * mean_j, device
