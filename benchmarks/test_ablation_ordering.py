"""Ablation: JigSaw-M reconstruction ordering (§4.4.2).

The paper reconstructs largest-subset-first so the most-correlated
marginals shape the PMF before the high-fidelity small ones sharpen it.
This bench compares largest-first, smallest-first, and a flat single
pass over all marginals together.
"""

import functools

from _shared import save_result
from repro.core import (
    JigSawM,
    JigSawMConfig,
    bayesian_reconstruction,
    ordered_reconstruction,
)
from repro.devices import ibmq_toronto
from repro.experiments import format_table
from repro.metrics import probability_of_successful_trial
from repro.workloads import ghz


@functools.lru_cache(maxsize=1)
def sweep():
    device = ibmq_toronto()
    workload = ghz(12)
    runner = JigSawM(device, JigSawMConfig(exact=True), seed=26)
    result = runner.run(workload.circuit, 65_536)
    marginals_by_size = result.marginals_by_size
    correct = workload.correct_outcomes

    largest_first = ordered_reconstruction(
        result.global_pmf, marginals_by_size, tolerance=1e-4, max_rounds=32
    )
    # Smallest-first: reverse the layer order.
    smallest_first = result.global_pmf
    for size in sorted(marginals_by_size):
        smallest_first = bayesian_reconstruction(
            smallest_first, marginals_by_size[size]
        )
    flat = bayesian_reconstruction(
        result.global_pmf,
        [m for layer in marginals_by_size.values() for m in layer],
    )
    return {
        "baseline (global)": probability_of_successful_trial(
            result.global_pmf, correct
        ),
        "largest-first (paper)": probability_of_successful_trial(
            largest_first, correct
        ),
        "smallest-first": probability_of_successful_trial(
            smallest_first, correct
        ),
        "flat single pass": probability_of_successful_trial(flat, correct),
    }


def test_ablation_ordering(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["Ordering", "PST"],
        [[k, v] for k, v in results.items()],
        title="Ablation: JigSaw-M reconstruction ordering (GHZ-12 / Toronto)",
    )
    save_result("ablation_ordering", text)

    base = results["baseline (global)"]
    # Every ordering beats the prior; the paper's ordering is competitive
    # with (or better than) the alternatives.
    for key, value in results.items():
        if key != "baseline (global)":
            assert value > base, key
    assert results["largest-first (paper)"] >= 0.9 * max(
        results["smallest-first"], results["flat single pass"]
    )
