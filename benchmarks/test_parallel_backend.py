"""Perf smoke check: sharded execution is deterministic and coalescing wins.

Two claims, one benchmark:

1. **Determinism invariant** — a :class:`ShardedBackend` at ``workers=4``
   produces bit-for-bit the PMFs of the serial backend under a fixed
   seed (sampled mode, where the claim is strongest: per-request seed
   streams make draws independent of worker scheduling).
2. **Coalescing win** — a multi-workload sweep (several workloads x
   several trial budgets, the shape where programs repeat) submitted as
   one combined batch performs strictly fewer statevector simulations
   *and* noisy-channel evaluations than executing each plan's batch
   serially, with identical outputs.  Counts are asserted (wall clock is
   measured and recorded, not asserted — evaluation counts are the
   deterministic cost model).
"""

from __future__ import annotations

import os
import time

from _shared import save_bench_json
from repro.core import JigSaw, JigSawConfig
from repro.devices import ibmq_toronto
from repro.noise.model import NoiseModel
from repro.runtime import LocalExactBackend, LocalSamplingBackend, ShardedBackend
from repro.workloads import workload_by_name

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

SEED = 0
WORKLOAD_NAMES = ("BV-6", "GHZ-8", "QAOA-8 p1")
TRIAL_BUDGETS = (16_384, 32_768, 65_536)


def sweep_plans(device):
    """One plan per (workload, budget) from fresh, equally-seeded runners.

    Fresh runners model the production sweep shape: the same program
    re-planned per configuration yields content-identical — but distinct —
    executables, which is exactly what coalescing dedups.
    """
    plans = []
    for name in WORKLOAD_NAMES:
        circuit = workload_by_name(name).circuit
        for budget in TRIAL_BUDGETS:
            runner = JigSaw(device, JigSawConfig(exact=True), seed=SEED)
            plans.append(runner.plan(circuit, total_trials=budget))
    return plans


def test_sharded_sampled_bitforbit_with_serial():
    device = ibmq_toronto()
    noise_model = NoiseModel.from_device(device)
    circuit = workload_by_name("GHZ-8").circuit
    plan = JigSaw(device, JigSawConfig(exact=False), seed=SEED).plan(
        circuit, total_trials=8_192
    )
    serial = LocalSamplingBackend(noise_model=noise_model, seed=SEED).execute(
        plan.requests()
    )
    sharded = ShardedBackend(
        LocalSamplingBackend(noise_model=noise_model, seed=SEED), workers=4
    ).execute(plan.requests())
    assert [p.as_dict() for p in sharded] == [p.as_dict() for p in serial]


def test_coalescing_reduces_evaluations():
    device = ibmq_toronto()
    noise_model = NoiseModel.from_device(device)

    # Serial path: each plan's batch executed on its own, as the seed
    # runtime did.  Fresh plans so no statevector is pre-shared.
    serial_backend = LocalExactBackend(noise_model=noise_model)
    serial_plans = sweep_plans(device)
    start = time.perf_counter()
    serial_pmfs = []
    for plan in serial_plans:
        serial_pmfs.extend(serial_backend.execute(plan.requests()))
    serial_seconds = time.perf_counter() - start

    # Sharded path: the whole sweep as ONE coalesced batch across 4
    # workers (again on fresh plans).
    sharded_backend = ShardedBackend(
        LocalExactBackend(noise_model=noise_model), workers=4
    )
    sharded_plans = sweep_plans(device)
    requests = [r for plan in sharded_plans for r in plan.requests()]
    start = time.perf_counter()
    sharded_pmfs = sharded_backend.execute(requests)
    sharded_seconds = time.perf_counter() - start

    # Identical outputs: exact mode + content-identical executables.
    assert [p.as_dict() for p in sharded_pmfs] == [
        p.as_dict() for p in serial_pmfs
    ]

    total_requests = len(requests)
    unique_bodies = len(WORKLOAD_NAMES)
    stats = sharded_backend.stats()
    # The sweep repeats every program len(TRIAL_BUDGETS) times, so
    # coalescing must cut channel evaluations by that factor and
    # statevector simulations down to one per workload body.
    assert stats["channel_evals"] == total_requests // len(TRIAL_BUDGETS)
    assert stats["channel_evals"] < serial_backend.channel_evals
    assert stats["statevector_evals"] == unique_bodies
    assert stats["statevector_evals"] < serial_backend.statevector_evals

    # Wall clock is machine-dependent, so it goes to stdout only; the
    # checked-in artifact holds the deterministic counts and stays
    # byte-stable across runs and machines.
    print(
        f"\nwall clock: serial {serial_seconds:.4f}s, "
        f"sharded {sharded_seconds:.4f}s"
    )
    save_bench_json(
        "parallel_backend",
        {
            "workloads": list(WORKLOAD_NAMES),
            "trial_budgets": list(TRIAL_BUDGETS),
            "requests": total_requests,
            "serial_statevector_evals": serial_backend.statevector_evals,
            "serial_channel_evals": serial_backend.channel_evals,
            "sharded_statevector_evals": stats["statevector_evals"],
            "sharded_channel_evals": stats["channel_evals"],
            "coalesced_requests": stats["coalesced_requests"],
        },
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "parallel_backend.txt"), "w"
    ) as handle:
        handle.write(
            "Sharded/coalescing execution benchmark (exact mode)\n"
            f"workloads: {', '.join(WORKLOAD_NAMES)}\n"
            f"budgets:   {', '.join(str(b) for b in TRIAL_BUDGETS)}\n"
            f"requests in sweep:           {total_requests}\n"
            "serial   statevector evals:   "
            f"{serial_backend.statevector_evals}\n"
            f"serial   channel evals:      {serial_backend.channel_evals}\n"
            f"sharded  statevector evals:  {stats['statevector_evals']}\n"
            f"sharded  channel evals:      {stats['channel_evals']}\n"
            f"coalesced requests:          {stats['coalesced_requests']}\n"
            "(outputs bit-for-bit identical; counts asserted, wall clock "
            "measured to stdout)\n"
        )
