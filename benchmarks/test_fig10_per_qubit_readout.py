"""Figure 10: per-qubit measurement success, baseline vs recompiled CPM.

Paper: for BV-6 on IBMQ-Toronto, the probability of correctly measuring a
qubit inside a recompiled CPM improves by up to 3.25x over the baseline
mapping's per-qubit readout.
"""

from _shared import save_result
from repro.devices import ibmq_toronto
from repro.experiments import figure10_per_qubit, figure10_text
from repro.workloads import bv


def test_figure10_per_qubit_readout(benchmark):
    rows = benchmark.pedantic(
        lambda: figure10_per_qubit(
            device=ibmq_toronto(), workload=bv(6), seed=6, exact=True
        ),
        rounds=1,
        iterations=1,
    )
    save_result("figure10_per_qubit_readout", figure10_text(rows))

    assert len(rows) == 6
    # CPM readout never loses to the baseline on any program qubit...
    assert all(r.cpm >= r.baseline - 0.02 for r in rows)
    # ...every qubit improves...
    assert all(r.improvement >= 1.0 for r in rows)
    # ...and the worst baseline qubit is among the biggest winners (the
    # paper's 3.25x headline is against a much weaker real-device
    # baseline; see EXPERIMENTS.md for the magnitude discussion).
    worst = min(rows, key=lambda r: r.baseline)
    median_gain = sorted(r.improvement for r in rows)[len(rows) // 2]
    assert worst.improvement >= median_gain
