"""Ablation: CPM subset size (the fidelity/correlation trade-off, §4.4).

The paper argues size 2 maximises per-CPM fidelity while larger sizes
capture more correlation but read worse; JigSaw-M wins by mixing them.
This bench sweeps a single fixed size through 2..5 on GHZ-12/Toronto and
checks that mixing sizes (JigSaw-M) is at least as good as the best
single size.
"""

import functools

from _shared import save_result
from repro.core import JigSaw, JigSawConfig, JigSawM, JigSawMConfig
from repro.devices import ibmq_toronto
from repro.experiments import format_table
from repro.metrics import probability_of_successful_trial
from repro.workloads import ghz


@functools.lru_cache(maxsize=1)
def sweep():
    device = ibmq_toronto()
    workload = ghz(12)
    shared = JigSaw(device, JigSawConfig(exact=True), seed=20).compile_global(
        workload.circuit
    )
    results = {}
    base_pst = None
    for size in (2, 3, 4, 5):
        runner = JigSaw(
            device, JigSawConfig(subset_size=size, exact=True), seed=20
        )
        result = runner.run(
            workload.circuit, 65_536, global_executable=shared
        )
        if base_pst is None:
            base_pst = probability_of_successful_trial(
                result.global_pmf, workload.correct_outcomes
            )
        results[f"size {size}"] = probability_of_successful_trial(
            result.output_pmf, workload.correct_outcomes
        )
    multi = JigSawM(device, JigSawMConfig(exact=True), seed=20)
    result_m = multi.run(workload.circuit, 65_536, global_executable=shared)
    results["sizes 2-5 (JigSaw-M)"] = probability_of_successful_trial(
        result_m.output_pmf, workload.correct_outcomes
    )
    return base_pst, results


def test_ablation_subset_size(benchmark):
    base_pst, results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["Configuration", "PST", "Relative"],
        [["baseline (global)", base_pst, 1.0]]
        + [[k, v, v / base_pst] for k, v in results.items()],
        title="Ablation: CPM subset size on GHZ-12 / IBMQ-Toronto",
    )
    save_result("ablation_subset_size", text)

    # Every subset size helps over the baseline.
    assert all(v > base_pst for v in results.values())
    # Mixing sizes is at least on par with the best single size.
    singles = [v for k, v in results.items() if k.startswith("size")]
    assert results["sizes 2-5 (JigSaw-M)"] >= 0.95 * max(singles)
