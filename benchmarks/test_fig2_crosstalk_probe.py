"""Figure 2: probe-qubit fidelity vs number of simultaneous measurements.

Paper: on IBMQ-Paris, the probe qubit's readout fidelity degrades visibly
as 1 -> 10 qubits are measured at once, for every prepared state.
"""

from _shared import save_result
from repro.devices import ibmq_paris
from repro.experiments import figure2_crosstalk_sweep, format_table


def test_figure2_crosstalk_probe(benchmark):
    points = benchmark.pedantic(
        lambda: figure2_crosstalk_sweep(
            device=ibmq_paris(), probe_physical=6, max_measured=10,
            samples_per_point=8, seed=2,
        ),
        rounds=1,
        iterations=1,
    )
    states = sorted({p.probe_state for p in points})
    ns = sorted({p.num_measured for p in points})
    rows = []
    for state in states:
        row = [state]
        for n in ns:
            match = [
                p.fidelity
                for p in points
                if p.probe_state == state and p.num_measured == n
            ]
            row.append(match[0])
        rows.append(row)
    text = format_table(
        ["Probe state"] + [f"N={n}" for n in ns],
        rows,
        title="Figure 2: Probe-qubit fidelity vs simultaneous measurements",
        float_format="{:.4f}",
    )
    save_result("figure2_crosstalk_probe", text)

    # Fidelity at N=10 must be strictly below N=1 for every probe state.
    for state in states:
        at_1 = next(
            p.fidelity for p in points
            if p.probe_state == state and p.num_measured == 1
        )
        at_10 = next(
            p.fidelity for p in points
            if p.probe_state == state and p.num_measured == 10
        )
        assert at_10 < at_1, state
