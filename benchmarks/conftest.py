"""Benchmark-harness configuration."""

import sys
import os

# Make the sibling `_shared` module importable regardless of rootdir.
sys.path.insert(0, os.path.dirname(__file__))


def pytest_sessionfinish(session, exitstatus):
    """Refresh the per-PR BENCH roll-up after any benchmark run.

    Best-effort: an aggregation failure must never turn a green bench
    session red, so errors go to stderr instead of the exit status.
    """
    try:
        from _shared import aggregate_bench_results

        aggregate_bench_results()
    except Exception as exc:  # pragma: no cover - defensive
        print(f"BENCH aggregation failed: {exc!r}", file=sys.stderr)
