"""Benchmark-harness configuration."""

import sys
import os

# Make the sibling `_shared` module importable regardless of rootdir.
sys.path.insert(0, os.path.dirname(__file__))
