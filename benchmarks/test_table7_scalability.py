"""Table 7: analytical memory / operation costs of reconstruction.

Paper: at n=100..500 qubits and up to 1M trials, JigSaw needs at most a
few GB and a few hundred million operations; both scale linearly in
trials and qubits.  Spot values: JigSaw (n=100, eps=0.05, T=1024K) runs
21.0 M ops; the eps=1 upper bound is 0.96 GB / 419 M ops.
"""

import pytest

from _shared import save_bench_json, save_result
from repro.core import table7_rows
from repro.experiments import format_table


def test_table7_scalability(benchmark):
    rows = benchmark.pedantic(table7_rows, rounds=1, iterations=1)
    text = format_table(
        [
            "Qubits", "eps=delta", "Trials",
            "JigSaw Mem (GB)", "JigSaw OPs (M)",
            "JigSaw-M Mem (GB)", "JigSaw-M OPs (M)",
        ],
        [
            [
                row["qubits"], row["epsilon"], row["trials"],
                row["jigsaw_memory_gb"], row["jigsaw_ops_millions"],
                row["jigsawm_memory_gb"], row["jigsawm_ops_millions"],
            ]
            for row in rows
        ],
        title="Table 7: Scalability of JigSaw and JigSaw-M",
        float_format="{:.2f}",
    )
    save_result("table7_scalability", text)
    save_bench_json(
        "table7_scalability",
        {
            "rows": [
                {
                    "qubits": row["qubits"],
                    "epsilon": row["epsilon"],
                    "trials": row["trials"],
                    "jigsaw_memory_gb": row["jigsaw_memory_gb"],
                    "jigsaw_ops_millions": row["jigsaw_ops_millions"],
                    "jigsawm_memory_gb": row["jigsawm_memory_gb"],
                    "jigsawm_ops_millions": row["jigsawm_ops_millions"],
                }
                for row in rows
            ]
        },
    )

    indexed = {
        (row["qubits"], row["epsilon"], row["trials"]): row for row in rows
    }
    # Spot-check the paper's cells.
    assert indexed[(100, 0.05, 1024 * 1024)][
        "jigsaw_ops_millions"
    ] == pytest.approx(21.0, rel=0.01)
    assert indexed[(100, 0.05, 1024 * 1024)][
        "jigsawm_ops_millions"
    ] == pytest.approx(83.9, rel=0.01)
    assert indexed[(100, 1.0, 1024 * 1024)][
        "jigsaw_memory_gb"
    ] == pytest.approx(0.96, abs=0.02)
    assert indexed[(100, 1.0, 1024 * 1024)][
        "jigsawm_memory_gb"
    ] == pytest.approx(3.97, abs=0.1)
    assert indexed[(500, 0.05, 1024 * 1024)][
        "jigsaw_ops_millions"
    ] == pytest.approx(105.0, rel=0.01)
    assert indexed[(500, 1.0, 1024 * 1024)][
        "jigsaw_ops_millions"
    ] == pytest.approx(2097.0, rel=0.01)
    # Linear scaling in trials (32K -> 1024K is exactly x32).
    small = indexed[(100, 0.05, 32 * 1024)]["jigsaw_ops_millions"]
    large = indexed[(100, 0.05, 1024 * 1024)]["jigsaw_ops_millions"]
    assert large == pytest.approx(32 * small, rel=1e-6)
