"""The sharded segmented journal: rolling, compaction, replay, migration.

Covers the serving tier's :class:`SegmentedResultStore` durability
contract: shard routing by device fingerprint, size-triggered segment
rolls, compaction (count- and dead-ratio-triggered, and forced), restart
replay with later-records-win, torn-tail tolerance on the active segment
only, payload-version checks, and the ``migrate_journal`` path that
``repro store compact`` exposes for legacy single-file journals.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.payload import PAYLOAD_VERSION
from repro.exceptions import PayloadError, ServiceError
from repro.service.store import ResultStore
from repro.service.tier import SegmentedResultStore, migrate_journal


def payload(i: int) -> dict:
    return {"scheme": "jigsaw", "value": i, "padding": "x" * 40}


def segments_of(root: str, shard: str) -> list:
    return sorted(os.listdir(os.path.join(root, shard)))


class TestRoundtrip:
    def test_put_get_roundtrip_and_isolation(self, tmp_path):
        store = SegmentedResultStore(root=str(tmp_path / "j"))
        store.put("fp1", payload(1), shard="devA")
        got = store.get("fp1")
        assert got["value"] == 1
        got["value"] = 999  # a caller's mutation must not corrupt the store
        assert store.get("fp1")["value"] == 1
        assert store.get("missing") is None
        assert "fp1" in store and len(store) == 1

    def test_memory_only_mode(self):
        store = SegmentedResultStore(root=None)
        store.put("fp1", payload(1), shard="devA")
        assert store.get("fp1")["value"] == 1

    def test_shard_routing(self, tmp_path):
        root = str(tmp_path / "j")
        store = SegmentedResultStore(root=root)
        store.put("aa11", payload(1), shard="devA")
        store.put("bb22", payload(2), shard="devB")
        store.put("cc33", payload(3))  # no hint: fingerprint-prefix shard
        assert sorted(os.listdir(root)) == ["devA", "devB", "fp-cc"]

    def test_shard_key_sanitised(self, tmp_path):
        root = str(tmp_path / "j")
        store = SegmentedResultStore(root=root)
        store.put("fp1", payload(1), shard="dev/../ evil")
        (name,) = os.listdir(root)
        assert "/" not in name and " " not in name

    def test_lru_eviction_reloads_from_disk(self, tmp_path):
        store = SegmentedResultStore(root=str(tmp_path / "j"), max_entries=2)
        for i in range(5):
            store.put(f"fp{i}", payload(i), shard="devA")
        assert len(store) == 2 and store.evictions == 3
        # Evicted entries reload from their shard's segments.
        assert store.get("fp0")["value"] == 0
        assert store.reloads == 1

    def test_rejects_bad_knobs(self, tmp_path):
        with pytest.raises(ServiceError):
            SegmentedResultStore(max_entries=0)
        with pytest.raises(ServiceError):
            SegmentedResultStore(segment_bytes=0)
        with pytest.raises(ServiceError):
            SegmentedResultStore(max_dead_ratio=0.0)


class TestSegments:
    def test_size_triggered_roll(self, tmp_path):
        root = str(tmp_path / "j")
        store = SegmentedResultStore(
            root=root, segment_bytes=150, max_segments=100
        )
        for i in range(6):
            store.put(f"fp{i}", payload(i), shard="devA")
        names = segments_of(root, "devA")
        assert len(names) > 1
        assert names[0] == "seg-000001.jsonl"

    def test_count_triggered_compaction(self, tmp_path):
        root = str(tmp_path / "j")
        store = SegmentedResultStore(
            root=root, segment_bytes=150, max_segments=3
        )
        for i in range(30):
            store.put(f"fp{i:02d}", payload(i), shard="devA")
        stats = store.stats()["shards"]["devA"]
        assert stats["compactions"] >= 1
        assert stats["segments"] <= 4  # snapshot + at most a few fresh
        assert all(store.get(f"fp{i:02d}")["value"] == i for i in range(30))

    def test_dead_ratio_triggered_compaction(self, tmp_path):
        root = str(tmp_path / "j")
        store = SegmentedResultStore(
            root=root, segment_bytes=10_000, max_segments=100,
            max_dead_ratio=0.5,
        )
        store.put("fp0", payload(0), shard="devA")
        for i in range(1, 6):
            store.put("fp0", payload(i), shard="devA")  # dead duplicates
        stats = store.stats()["shards"]["devA"]
        assert stats["compactions"] >= 1
        # Duplicates put after the last compaction may still be dead, but
        # compaction keeps the ratio bounded below the trigger.
        assert stats["dead"] <= 1
        assert store.get("fp0")["value"] == 5  # later records won

    def test_forced_compaction_leaves_one_segment(self, tmp_path):
        root = str(tmp_path / "j")
        store = SegmentedResultStore(root=root, segment_bytes=150)
        for i in range(8):
            store.put(f"fp{i}", payload(i), shard="devA")
        store.compact()
        assert len(segments_of(root, "devA")) == 1
        # The snapshot took the next number — crash-safe without renames.
        reloaded = SegmentedResultStore(root=root)
        assert all(reloaded.get(f"fp{i}")["value"] == i for i in range(8))


class TestReplay:
    def test_restart_replays_later_records_win(self, tmp_path):
        root = str(tmp_path / "j")
        store = SegmentedResultStore(root=root, segment_bytes=150)
        for i in range(10):
            store.put(f"fp{i % 3}", payload(i), shard="devA")
        reloaded = SegmentedResultStore(root=root)
        assert reloaded.get("fp0")["value"] == 9
        assert reloaded.get("fp1")["value"] == 7
        assert reloaded.get("fp2")["value"] == 8
        assert reloaded.loaded == 3

    def test_torn_tail_tolerated_on_active_segment(self, tmp_path):
        root = str(tmp_path / "j")
        store = SegmentedResultStore(root=root)
        store.put("fp1", payload(1), shard="devA")
        (name,) = segments_of(root, "devA")
        with open(os.path.join(root, "devA", name), "a") as handle:
            handle.write('{"fingerprint": "torn-mid-append')
        reloaded = SegmentedResultStore(root=root)
        assert reloaded.get("fp1")["value"] == 1

    def test_midfile_corruption_is_fatal(self, tmp_path):
        root = str(tmp_path / "j")
        store = SegmentedResultStore(root=root)
        store.put("fp1", payload(1), shard="devA")
        (name,) = segments_of(root, "devA")
        path = os.path.join(root, "devA", name)
        with open(path) as handle:
            good = handle.read()
        with open(path, "w") as handle:
            handle.write("not json\n" + good)
        with pytest.raises(PayloadError, match="corrupt"):
            SegmentedResultStore(root=root)

    def test_corruption_in_sealed_segment_is_fatal_even_at_tail(
        self, tmp_path
    ):
        root = str(tmp_path / "j")
        store = SegmentedResultStore(root=root, segment_bytes=80)
        for i in range(4):
            store.put(f"fp{i}", payload(i), shard="devA")
        names = segments_of(root, "devA")
        assert len(names) >= 2
        # Tear the tail of a SEALED (non-active) segment: that file was
        # complete by construction, so this is corruption, not a crash.
        with open(os.path.join(root, "devA", names[0]), "a") as handle:
            handle.write('{"fingerprint": "torn')
        with pytest.raises(PayloadError, match="corrupt"):
            SegmentedResultStore(root=root)

    def test_future_payload_version_refused(self, tmp_path):
        root = str(tmp_path / "j")
        store = SegmentedResultStore(root=root)
        store.put("fp1", payload(1), shard="devA")
        (name,) = segments_of(root, "devA")
        with open(os.path.join(root, "devA", name), "a") as handle:
            handle.write(
                json.dumps(
                    {
                        "fingerprint": "fp2",
                        "payload_version": PAYLOAD_VERSION + 1,
                        "payload": {"payload_version": PAYLOAD_VERSION + 1},
                    }
                )
                + "\n"
            )
        with pytest.raises(PayloadError, match="payload_version"):
            SegmentedResultStore(root=root)

    def test_put_refuses_future_version(self, tmp_path):
        store = SegmentedResultStore(root=str(tmp_path / "j"))
        with pytest.raises(PayloadError):
            store.put(
                "fp1", {"payload_version": PAYLOAD_VERSION + 1}, shard="devA"
            )


class TestMigration:
    def test_legacy_journal_roundtrip(self, tmp_path):
        legacy_path = str(tmp_path / "legacy.jsonl")
        legacy = ResultStore(path=legacy_path)
        for i in range(12):
            legacy.put(f"fp{i:02d}", payload(i))
        for i in range(4):
            legacy.put(f"fp{i:02d}", payload(i + 100))  # updates
        root = str(tmp_path / "segmented")
        summary = migrate_journal(legacy_path, root)
        assert summary["records_read"] == 16
        assert summary["records_live"] == 12
        migrated = SegmentedResultStore(root=root)
        # Bit-for-bit the legacy store's view, later records winning.
        for i in range(12):
            fingerprint = f"fp{i:02d}"
            assert migrated.get(fingerprint) == legacy.get(fingerprint)
        # Migration ends compacted: one segment per shard.
        for shard in os.listdir(root):
            assert len(segments_of(root, shard)) == 1

    def test_migration_tolerates_torn_legacy_tail(self, tmp_path):
        legacy_path = str(tmp_path / "legacy.jsonl")
        legacy = ResultStore(path=legacy_path)
        legacy.put("fp1", payload(1))
        with open(legacy_path, "a") as handle:
            handle.write('{"fingerprint": "torn')
        summary = migrate_journal(legacy_path, str(tmp_path / "segmented"))
        assert summary["records_read"] == 1

    def test_migration_missing_journal(self, tmp_path):
        with pytest.raises(ServiceError, match="no journal"):
            migrate_journal(str(tmp_path / "nope.jsonl"), str(tmp_path / "s"))

    def test_service_reads_what_migration_wrote(self, tmp_path):
        """End to end: a tier store built on a migrated journal memoizes
        the jobs the legacy store had finished."""
        from repro.devices import ibmq_toronto
        from repro.service import JobSpec, MitigationService

        legacy_path = str(tmp_path / "legacy.jsonl")
        spec = JobSpec(tenant="a", workload="GHZ-4", seed=1)
        with MitigationService(
            devices={"toronto": ibmq_toronto},
            store=ResultStore(path=legacy_path),
        ) as service:
            executed = service.submit(spec)
            service.drain()
        migrate_journal(legacy_path, str(tmp_path / "segmented"))
        with MitigationService(
            devices={"toronto": ibmq_toronto},
            store=SegmentedResultStore(root=str(tmp_path / "segmented")),
        ) as service:
            job = service.submit(spec)
            assert job.source == "memoized"
            assert job.result == executed.result
