"""Tests for the array-native outcome spine.

The data plane stores distributions as aligned ``codes``/``probs`` arrays
(see ``docs/ARCHITECTURE.md``, "Data plane"); bitstrings are a lazy edge
view.  These tests pin the spine down from three directions:

* code <-> string round-trips are exact at every supported width;
* the vectorised operations (marginal, metrics, reconstruction) agree
  with straightforward per-key dict reference implementations on
  randomized sparse supports;
* million-shot sampling counts in bounded memory (per-chunk code
  collapse) and conserves every trial.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.core import PMF, Marginal, bayesian_update
from repro.core.pmf import aligned_probs, hellinger_pmfs
from repro.exceptions import PMFError
from repro.metrics import (
    fidelity,
    hellinger,
    kl_divergence,
    total_variation_distance,
)
from repro.noise import NoiseModel, NoisySampler
from repro.utils.bits import (
    MAX_CODE_BITS,
    codes_to_strings,
    extract_bits,
    gather_code_bits,
    strings_to_codes,
)
from tests.conftest import make_line_device
from tests.test_noise import compile_identity


# ---------------------------------------------------------------------------
# Property tests: code <-> string round-trip at widths 1..24
# ---------------------------------------------------------------------------


@st.composite
def codes_and_width(draw):
    width = draw(st.integers(min_value=1, max_value=24))
    codes = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << width) - 1),
            min_size=1,
            max_size=64,
            unique=True,
        )
    )
    return sorted(codes), width


@given(codes_and_width())
@settings(max_examples=200)
def test_code_string_round_trip(case):
    codes, width = case
    strings = codes_to_strings(np.array(codes, dtype=np.int64), width)
    assert strings == [format(code, f"0{width}b") for code in codes]
    back = strings_to_codes(strings, width)
    assert back.tolist() == codes


@given(codes_and_width())
@settings(max_examples=100)
def test_pmf_round_trip_codes_vs_strings(case):
    codes, width = case
    probs = np.linspace(1.0, 2.0, len(codes))
    from_codes = PMF.from_codes(np.array(codes), probs, width)
    from_strings = PMF(
        {format(code, f"0{width}b"): p for code, p in zip(codes, probs)}
    )
    assert from_codes.num_bits == from_strings.num_bits == width
    assert from_codes.codes.tolist() == from_strings.codes.tolist()
    assert np.allclose(from_codes.probs, from_strings.probs)
    assert from_codes.as_dict() == pytest.approx(from_strings.as_dict())


def test_strings_to_codes_rejects_junk():
    with pytest.raises(ValueError):
        strings_to_codes(["0x"], 2)
    with pytest.raises(ValueError):
        strings_to_codes(["01", "011"], 2)
    with pytest.raises(ValueError):
        strings_to_codes(["+1"], 2)
    with pytest.raises(ValueError):
        strings_to_codes(["01"], MAX_CODE_BITS + 1)


def test_gather_code_bits_matches_extract_bits():
    rng = np.random.default_rng(7)
    width = 12
    codes = rng.integers(0, 1 << width, size=200, dtype=np.int64)
    positions = [0, 3, 7, 11]
    projected = gather_code_bits(codes, positions)
    for code, proj in zip(codes, projected):
        key = format(int(code), f"0{width}b")
        assert format(int(proj), f"0{len(positions)}b") == extract_bits(
            key, positions
        )


def test_pmf_width_limit():
    with pytest.raises(PMFError):
        PMF.from_codes(np.array([0]), np.array([1.0]), MAX_CODE_BITS + 1)
    wide = PMF({"0" * 62 + "1": 1.0})
    assert wide.num_bits == 63
    assert wide.codes.tolist() == [1]


# ---------------------------------------------------------------------------
# Old-vs-new equivalence on randomized sparse supports
# ---------------------------------------------------------------------------


def random_sparse_pmf(rng, width, support):
    codes = rng.choice(1 << width, size=support, replace=False)
    probs = rng.random(support) + 1e-3
    return PMF.from_codes(codes.astype(np.int64), probs, width)


def dict_marginal(dist, positions):
    grouped = {}
    for key, value in dist.items():
        sub = extract_bits(key, positions)
        grouped[sub] = grouped.get(sub, 0.0) + value
    total = sum(grouped.values())
    return {k: v / total for k, v in grouped.items()}


def dict_tvd(p, q):
    return 0.5 * sum(
        abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in set(p) | set(q)
    )


def dict_hellinger(p, q):
    total = 0.0
    for key in set(p) | set(q):
        diff = math.sqrt(p.get(key, 0.0)) - math.sqrt(q.get(key, 0.0))
        total += diff * diff
    return math.sqrt(total / 2.0)


def dict_kl(p, q, epsilon=1e-12):
    total = 0.0
    for key, p_val in p.items():
        if p_val > 0.0:
            total += p_val * math.log(p_val / max(q.get(key, 0.0), epsilon))
    return total


def dict_bayesian_update(prior, marginal):
    """Per-key Algorithm 1 reference: group, coefficients, odds, normalise."""
    groups = {}
    for key, value in prior.items():
        groups.setdefault(extract_bits(key, marginal.qubits), 0.0)
        groups[extract_bits(key, marginal.qubits)] += value
    posterior = {}
    for key, value in prior.items():
        sub = extract_bits(key, marginal.qubits)
        p_m = min(marginal.pmf.prob(sub), 1.0 - 1e-12)
        if p_m > 0.0 and groups[sub] > 0.0:
            posterior[key] = value / groups[sub] * (p_m / (1.0 - p_m))
        else:
            posterior[key] = value
    total = sum(posterior.values())
    return {k: v / total for k, v in posterior.items()}


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_marginal_matches_dict_reference(seed):
    rng = np.random.default_rng(seed)
    pmf = random_sparse_pmf(rng, width=14, support=300)
    positions = sorted(
        rng.choice(14, size=4, replace=False).astype(int).tolist()
    )
    expected = dict_marginal(pmf.as_dict(), positions)
    assert pmf.marginal(positions).as_dict() == pytest.approx(expected)


@pytest.mark.parametrize("seed", [3, 4])
def test_metrics_match_dict_reference(seed):
    rng = np.random.default_rng(seed)
    p = random_sparse_pmf(rng, width=12, support=250)
    q = random_sparse_pmf(rng, width=12, support=250)
    pd, qd = p.as_dict(), q.as_dict()
    assert total_variation_distance(p, q) == pytest.approx(dict_tvd(pd, qd))
    assert hellinger(p, q) == pytest.approx(dict_hellinger(pd, qd))
    assert kl_divergence(p, q) == pytest.approx(dict_kl(pd, qd))
    assert fidelity(p, q) == pytest.approx(1.0 - dict_tvd(pd, qd))


@pytest.mark.parametrize("seed", [5, 6])
def test_metrics_mixed_pmf_and_dict_operands(seed):
    # One PMF + one plain bitstring dict must ride the same merge.
    rng = np.random.default_rng(seed)
    p = random_sparse_pmf(rng, width=10, support=100)
    q = random_sparse_pmf(rng, width=10, support=100)
    qd = q.as_dict()
    assert total_variation_distance(p, qd) == pytest.approx(
        dict_tvd(p.as_dict(), qd)
    )
    assert hellinger(qd, p) == pytest.approx(dict_hellinger(qd, p.as_dict()))


def test_metrics_fall_back_for_non_bitstring_keys():
    # Arbitrary string-keyed mappings keep the legacy dict semantics.
    assert total_variation_distance({"a": 1.0}, {"a": 1.0}) == 0.0
    assert hellinger({"a": 1.0}, {"b": 1.0}) == pytest.approx(1.0)


@pytest.mark.parametrize("seed", [7, 8])
def test_bayesian_update_matches_dict_reference(seed):
    rng = np.random.default_rng(seed)
    prior = random_sparse_pmf(rng, width=10, support=200)
    qubits = (2, 5)
    marginal = Marginal(qubits, prior.marginal(qubits))
    expected = dict_bayesian_update(prior.as_dict(), marginal)
    assert bayesian_update(prior, marginal).as_dict() == pytest.approx(expected)


def test_metrics_width_mismatch_keeps_string_semantics():
    # Same code, different widths: "1" and "01" are different outcomes and
    # must not collide through the integer fast path.
    narrow = PMF({"1": 1.0})
    wide = PMF({"01": 1.0})
    assert total_variation_distance(narrow, wide) == pytest.approx(1.0)
    assert hellinger(narrow, wide) == pytest.approx(1.0)


def test_bayesian_update_normalises_unnormalised_prior():
    raw = {"00": 2.0, "01": 2.0, "11": 2.0}
    marginal = Marginal((0,), PMF({"0": 0.9, "1": 0.1}))
    scaled = bayesian_update(PMF(raw, normalize=False), marginal)
    unit = bayesian_update(PMF(raw, normalize=True), marginal)
    assert scaled.as_dict() == pytest.approx(unit.as_dict())


def test_from_codes_leaves_caller_arrays_writable():
    codes = np.array([1, 3], dtype=np.int64)
    probs = np.array([0.5, 0.5])
    pmf = PMF.from_codes(codes, probs, 2)
    codes[0] = 0  # caller's array is still its own
    probs[0] = 0.0
    assert pmf.codes.tolist() == [1, 3]
    assert pmf.probs.tolist() == [0.5, 0.5]


def test_aligned_probs_merges_supports():
    p = PMF({"00": 0.5, "01": 0.5})
    q = PMF({"01": 0.25, "11": 0.75})
    pa, qa = aligned_probs(p, q)
    assert pa.tolist() == [0.5, 0.5, 0.0]
    assert qa.tolist() == [0.0, 0.25, 0.75]
    assert hellinger_pmfs(p, p) == pytest.approx(0.0)


# ---------------------------------------------------------------------------
# Million-shot sampling in bounded memory
# ---------------------------------------------------------------------------


def test_million_shot_counting_is_chunked_and_conserving():
    device = make_line_device(num_qubits=4, readout=0.04, crosstalk=0.002)
    noise = NoiseModel.from_device(device)
    qc = QuantumCircuit(4).h(0).cx(0, 1).cx(1, 2).cx(2, 3).measure_all()
    executable = compile_identity(qc, device)

    shots = 1_000_000
    chunk_shots = 1 << 14
    sampler = NoisySampler(noise, seed=11, chunk_shots=chunk_shots)

    chunks_seen = []
    original = NoisySampler._sample_chunk

    def recording(self, rng, n, *args, **kwargs):
        chunks_seen.append(n)
        return original(self, rng, n, *args, **kwargs)

    NoisySampler._sample_chunk = recording
    try:
        histogram = sampler.run_codes(executable, shots)
    finally:
        NoisySampler._sample_chunk = original

    # Streamed in bounded chunks: no chunk ever exceeded chunk_shots, and
    # every trial landed in the histogram.
    assert max(chunks_seen) <= chunk_shots
    assert sum(chunks_seen) == shots
    assert histogram.total == shots
    assert histogram.counts.dtype == np.int64
    assert (np.diff(histogram.codes) > 0).all()
    # The whole support fits the 4-bit register.
    assert histogram.codes.min() >= 0 and histogram.codes.max() < 16

    # The string edge agrees with the array-native histogram.
    as_dict = histogram.to_dict()
    assert sum(as_dict.values()) == shots
    assert set(as_dict) == set(codes_to_strings(histogram.codes, 4))

    # And the identical seed through the dict API gives the same counts.
    reference = NoisySampler(noise, seed=11, chunk_shots=chunk_shots)
    assert reference.run(executable, shots) == as_dict
