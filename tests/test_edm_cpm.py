"""Tests for the EDM baseline and CPM recompilation."""

import pytest

from repro.circuits import QuantumCircuit
from repro.compiler import (
    compile_cpm,
    ensemble_of_diverse_mappings,
    transpile,
)
from repro.exceptions import CompilationError
from tests.conftest import make_line_device, make_varied_line_device


@pytest.fixture
def device():
    return make_varied_line_device(num_qubits=8)


@pytest.fixture
def program():
    qc = QuantumCircuit(4, name="prog")
    qc.h(0).cx(0, 1).cx(1, 2).cx(2, 3)
    return qc.measure_all()


class TestEdm:
    def test_ensemble_size(self, device, program):
        executables = ensemble_of_diverse_mappings(
            program, device, ensemble_size=3, seed=0
        )
        assert len(executables) == 3

    def test_mappings_are_diverse(self, device, program):
        executables = ensemble_of_diverse_mappings(
            program, device, ensemble_size=2, seed=0
        )
        first = set(executables[0].final_layout.physical_qubits)
        second = set(executables[1].final_layout.physical_qubits)
        assert first != second

    def test_invalid_size(self, device, program):
        with pytest.raises(CompilationError):
            ensemble_of_diverse_mappings(program, device, ensemble_size=0)


class TestCpmRecompilation:
    def test_no_recompile_reuses_global_layout(self, device, program):
        global_exec = transpile(program, device, seed=1)
        cpm = program.with_measured_subset([0, 1])
        cpm_exec = compile_cpm(
            cpm, device, global_exec, recompile=False, seed=2
        )
        assert cpm_exec.initial_layout == global_exec.initial_layout

    def test_recompile_improves_measured_readout(self, device, program):
        """Recompiled CPM measurements land on better readout qubits."""
        global_exec = transpile(program, device, seed=1)
        cpm = program.with_measured_subset([0, 1])
        plain = compile_cpm(cpm, device, global_exec, recompile=False, seed=2)
        recompiled = compile_cpm(
            cpm, device, global_exec, recompile=True, seed=2
        )
        readout = device.calibration.readout_error

        def measured_error(executable):
            return sum(
                readout[q] for q in executable.measured_physical_qubits
            )

        assert measured_error(recompiled) <= measured_error(plain) + 1e-12

    def test_no_extra_swaps_rule(self, device, program):
        """A recompiled CPM never pays more SWAPs than the global run."""
        global_exec = transpile(program, device, seed=1)
        cpm = program.with_measured_subset([1, 2])
        recompiled = compile_cpm(
            cpm, device, global_exec, recompile=True, seed=3
        )
        assert recompiled.num_swaps <= max(global_exec.num_swaps, recompiled.num_swaps)
        # When a SWAP-neutral candidate exists it must be chosen.
        if recompiled.num_swaps > global_exec.num_swaps:
            # Fallback case: must then be the EPS-maximal option.
            assert recompiled.eps > 0

    def test_vulnerable_qubits_avoided_when_possible(self):
        device = make_varied_line_device(num_qubits=8)
        qc = QuantumCircuit(2, name="tiny").h(0).cx(0, 1).measure_all()
        global_exec = transpile(qc, device, seed=5)
        cpm = qc.with_measured_subset([0, 1])
        recompiled = compile_cpm(cpm, device, global_exec, recompile=True, seed=5)
        vulnerable = set(device.vulnerable_qubits(75.0))
        measured = set(recompiled.measured_physical_qubits)
        assert not (measured & vulnerable)
