"""Tests for the Device abstraction and the device library."""

import numpy as np
import pytest

from repro.devices import (
    Device,
    google_sycamore,
    ibmq_manhattan,
    ibmq_paris,
    ibmq_toronto,
)
from repro.exceptions import DeviceError
from tests.conftest import make_line_device


class TestDeviceBasics:
    def test_num_qubits(self, line_device):
        assert line_device.num_qubits == 6

    def test_edges_sorted_tuples(self, line_device):
        assert (0, 1) in line_device.edges
        assert all(u < v for u, v in line_device.edges)

    def test_are_coupled_symmetric(self, line_device):
        assert line_device.are_coupled(0, 1)
        assert line_device.are_coupled(1, 0)
        assert not line_device.are_coupled(0, 2)

    def test_neighbors(self, line_device):
        assert line_device.neighbors(0) == [1]
        assert line_device.neighbors(2) == [1, 3]

    def test_distances(self, line_device):
        assert line_device.distance(0, 5) == 5
        assert line_device.distance(2, 2) == 0
        assert np.all(np.isfinite(line_device.distances))

    def test_gate_error_lookup(self, line_device):
        assert line_device.gate_error([2]) == pytest.approx(0.0005)
        assert line_device.gate_error([2, 3]) == pytest.approx(0.01)

    def test_gate_error_three_qubits_rejected(self, line_device):
        with pytest.raises(DeviceError):
            line_device.gate_error([0, 1, 2])

    def test_calibration_size_must_match(self, line_device):
        from repro.devices.topology import line_topology

        with pytest.raises(DeviceError):
            Device("bad", line_topology(4), line_device.calibration)

    def test_connected_subgraphs(self, line_device):
        regions = line_device.connected_subgraphs_greedy(3, [0, 5])
        assert all(len(r) == 3 for r in regions)

    def test_region_too_large(self, line_device):
        with pytest.raises(DeviceError):
            line_device.connected_subgraphs_greedy(99, [0])


class TestDeviceLibrary:
    """The synthetic calibrations must match the paper's reported stats."""

    def test_toronto_figure3_stats(self):
        stats = ibmq_toronto().readout_stats().as_percent()
        assert stats.mean == pytest.approx(4.70, abs=0.15)
        assert stats.median == pytest.approx(2.76, abs=0.3)
        assert stats.minimum == pytest.approx(0.85, abs=0.05)
        assert stats.maximum == pytest.approx(22.2, abs=0.3)

    def test_paris_stats(self):
        stats = ibmq_paris().readout_stats().as_percent()
        assert stats.mean == pytest.approx(4.15, abs=0.2)
        assert stats.maximum == pytest.approx(18.5, abs=0.3)

    def test_manhattan_asymmetry(self):
        """§8: P(1 read as 0) ~ 3.6 %, P(0 read as 1) ~ 2.3 % on average."""
        cal = ibmq_manhattan().calibration
        assert float(np.mean(cal.p10)) > float(np.mean(cal.p01))
        ratio = float(np.mean(cal.p10)) / float(np.mean(cal.p01))
        assert ratio == pytest.approx(1.57, rel=0.05)

    def test_sycamore_table1_isolated(self):
        stats = google_sycamore().readout_stats(1).as_percent()
        assert stats.minimum == pytest.approx(2.60, abs=0.1)
        assert stats.mean == pytest.approx(6.14, abs=0.15)
        assert stats.median == pytest.approx(5.70, abs=0.3)
        assert stats.maximum == pytest.approx(11.7, abs=0.2)

    def test_sycamore_table1_simultaneous(self):
        device = google_sycamore()
        stats = device.readout_stats(device.num_qubits).as_percent()
        # Paper Table 1 simultaneous row: 3.30 / 7.73 / 7.10 / 20.9
        assert stats.mean == pytest.approx(7.73, abs=0.6)
        assert stats.maximum == pytest.approx(20.9, abs=1.5)

    def test_toronto_crosstalk_magnitude(self):
        """§3.1: error grows by up to ~2 % at 5 and ~4 % at 10 measurements."""
        cal = ibmq_toronto().calibration
        inc5 = max(
            cal.effective_readout_error(q, 5) - cal.effective_readout_error(q, 1)
            for q in range(27)
        )
        inc10 = max(
            cal.effective_readout_error(q, 10) - cal.effective_readout_error(q, 1)
            for q in range(27)
        )
        assert 0.015 <= inc5 <= 0.05
        assert 0.03 <= inc10 <= 0.1

    def test_devices_deterministic(self):
        a = ibmq_toronto()
        b = ibmq_toronto()
        assert np.allclose(a.calibration.p01, b.calibration.p01)

    def test_seed_changes_calibration_not_stats(self):
        a = ibmq_toronto(seed=1)
        b = ibmq_toronto(seed=2)
        assert not np.allclose(a.calibration.p01, b.calibration.p01)
        assert a.readout_stats().mean == pytest.approx(
            b.readout_stats().mean, rel=0.01
        )

    def test_best_qubits_not_colocated(self):
        """§3.2: the lowest-error qubits are scattered, not neighbours."""
        device = ibmq_toronto()
        best = device.best_readout_qubits(5)
        adjacent_pairs = sum(
            1
            for i, u in enumerate(best)
            for v in best[i + 1:]
            if device.are_coupled(u, v)
        )
        assert adjacent_pairs <= 2
