"""Tests for CPM subset generation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    all_pair_subsets,
    random_subsets,
    sliding_window_subsets,
    validate_subsets,
)
from repro.exceptions import ReconstructionError


class TestSlidingWindow:
    def test_paper_example(self):
        """§4.2.1: 4 qubits, size 2 -> (0,1), (1,2), (2,3), (0,3)."""
        subsets = sliding_window_subsets(4, 2)
        assert subsets == [(0, 1), (1, 2), (2, 3), (0, 3)]

    def test_count_equals_num_qubits(self):
        assert len(sliding_window_subsets(12, 2)) == 12
        assert len(sliding_window_subsets(10, 5)) == 10

    def test_every_qubit_covered_size_times(self):
        subsets = sliding_window_subsets(8, 3)
        coverage = {q: 0 for q in range(8)}
        for subset in subsets:
            for q in subset:
                coverage[q] += 1
        assert all(count == 3 for count in coverage.values())

    def test_full_size_collapses_to_one(self):
        assert sliding_window_subsets(4, 4) == [(0, 1, 2, 3)]

    def test_size_one_rejected(self):
        """Measuring a single qubit captures zero correlation (§4.2.1)."""
        with pytest.raises(ReconstructionError):
            sliding_window_subsets(4, 1)

    def test_size_exceeds_program(self):
        with pytest.raises(ReconstructionError):
            sliding_window_subsets(3, 5)

    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=2, max_value=6),
    )
    def test_subsets_sorted_unique(self, n, size):
        if size > n:
            return
        subsets = sliding_window_subsets(n, size)
        assert len(set(subsets)) == len(subsets)
        for subset in subsets:
            assert list(subset) == sorted(set(subset))
            assert len(subset) == size


class TestRandomSubsets:
    def test_count_and_size(self):
        subsets = random_subsets(10, 2, 8, seed=0)
        assert len(subsets) == 8
        assert all(len(s) == 2 for s in subsets)

    def test_distinct(self):
        subsets = random_subsets(6, 2, 10, seed=1)
        assert len(set(subsets)) == 10

    def test_coverage_enforced(self):
        subsets = random_subsets(12, 2, 12, ensure_coverage=True, seed=2)
        covered = {q for subset in subsets for q in subset}
        assert covered == set(range(12))

    def test_coverage_impossible_rejected(self):
        with pytest.raises(ReconstructionError):
            random_subsets(12, 2, 3, ensure_coverage=True, seed=0)

    def test_too_many_requested(self):
        with pytest.raises(ReconstructionError):
            random_subsets(4, 2, 7, seed=0)  # only 6 pairs exist

    def test_reproducible(self):
        a = random_subsets(10, 3, 5, seed=42)
        b = random_subsets(10, 3, 5, seed=42)
        assert a == b

    def test_infeasible_coverage_rejected_before_any_draw(self):
        # Upfront infeasibility: no RNG draw happens, so the check fires
        # even where rejection sampling would first burn a failed family.
        class PoisonedRNG:
            def choice(self, *args, **kwargs):  # pragma: no cover
                raise AssertionError("drew from RNG despite infeasibility")

        with pytest.raises(ReconstructionError):
            random_subsets(12, 2, 3, ensure_coverage=True, seed=PoisonedRNG())

    @given(st.integers(min_value=0, max_value=500))
    def test_coverage_repair_holds_for_any_seed(self, seed):
        # Tight family (count * size == num_qubits): random draws rarely
        # cover on their own, so the deterministic repair must kick in.
        subsets = random_subsets(12, 2, 6, ensure_coverage=True, seed=seed)
        assert len(subsets) == 6
        assert len(set(subsets)) == 6
        assert {q for subset in subsets for q in subset} == set(range(12))
        assert all(len(set(s)) == len(s) == 2 for s in subsets)

    def test_dense_family_fills_deterministically(self):
        # count == C(n, k): rejection alone would stall; the enumerated
        # fallback must deliver every combination.
        subsets = random_subsets(5, 2, 10, ensure_coverage=True, seed=0)
        assert len(set(subsets)) == 10


class TestAllPairs:
    def test_count_is_n_choose_2(self):
        assert len(all_pair_subsets(12)) == 66  # the paper's 12C2

    def test_pairs_sorted(self):
        for a, b in all_pair_subsets(5):
            assert a < b


class TestValidate:
    def test_normalises_order(self):
        assert validate_subsets([(3, 1)], 4) == [(1, 3)]

    def test_rejects_out_of_range(self):
        with pytest.raises(ReconstructionError):
            validate_subsets([(0, 9)], 4)

    def test_rejects_duplicates(self):
        with pytest.raises(ReconstructionError):
            validate_subsets([(1, 1)], 4)

    def test_rejects_empty_family(self):
        with pytest.raises(ReconstructionError):
            validate_subsets([], 4)
