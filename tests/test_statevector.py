"""Tests for the ideal statevector simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.exceptions import SimulationError
from repro.sim import (
    StatevectorSimulator,
    apply_gate_to_statevector,
    marginal_probabilities,
)
from repro.circuits.gates import gate_matrix


@pytest.fixture
def sim():
    return StatevectorSimulator()


class TestStatevector:
    def test_initial_state(self, sim):
        state = sim.statevector(QuantumCircuit(2))
        assert np.allclose(state, [1, 0, 0, 0])

    def test_x_gate(self, sim):
        state = sim.statevector(QuantumCircuit(1).x(0))
        assert np.allclose(np.abs(state) ** 2, [0, 1])

    def test_bell_state(self, sim, bell):
        state = sim.statevector(bell)
        probs = np.abs(state) ** 2
        assert np.allclose(probs, [0.5, 0, 0, 0.5])

    def test_cx_direction(self, sim):
        # control qubit 0 set -> target qubit 1 flips: |11> = index 3
        qc = QuantumCircuit(2).x(0).cx(0, 1)
        probs = sim.probabilities(qc)
        assert np.isclose(probs[3], 1.0)

    def test_cx_no_action_when_control_clear(self, sim):
        qc = QuantumCircuit(2).cx(0, 1)
        probs = sim.probabilities(qc)
        assert np.isclose(probs[0], 1.0)

    def test_swap_gate(self, sim):
        qc = QuantumCircuit(2).x(0).swap(0, 1)
        probs = sim.probabilities(qc)
        assert np.isclose(probs[2], 1.0)  # |10>: qubit1 set

    def test_three_qubit_ghz(self, sim):
        qc = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        probs = sim.probabilities(qc)
        assert np.isclose(probs[0], 0.5)
        assert np.isclose(probs[7], 0.5)

    def test_max_qubits_guard(self):
        small = StatevectorSimulator(max_qubits=3)
        with pytest.raises(SimulationError):
            small.statevector(QuantumCircuit(4))

    def test_gate_matrix_vs_kron_reference(self, sim):
        """Applying h on qubit 1 of 3 equals kron(I, H, I) on the state."""
        qc = QuantumCircuit(3).x(0).h(1)
        state = sim.statevector(qc)
        h = gate_matrix("h")
        x = gate_matrix("x")
        eye = np.eye(2)
        # kron order: qubit 2 ⊗ qubit 1 ⊗ qubit 0
        reference = np.kron(eye, np.kron(h, x)) @ np.eye(8)[:, 0]
        assert np.allclose(state, reference)


class TestIdealDistribution:
    def test_bell_distribution(self, sim, bell):
        dist = sim.ideal_distribution(bell)
        assert set(dist) == {"00", "11"}
        assert np.isclose(dist["00"], 0.5)

    def test_requires_measurements(self, sim):
        with pytest.raises(SimulationError):
            sim.ideal_distribution(QuantumCircuit(2).h(0))

    def test_partial_measurement_marginalises(self, sim):
        # GHZ-3 measuring only qubit 0: uniform single bit
        qc = QuantumCircuit(3, 1).h(0).cx(0, 1).cx(1, 2).measure(0, 0)
        dist = sim.ideal_distribution(qc)
        assert np.isclose(dist["0"], 0.5)
        assert np.isclose(dist["1"], 0.5)

    def test_clbit_remapping(self, sim):
        # qubit 0 (|1>) into clbit 1; qubit 1 (|0>) into clbit 0 -> "10"
        qc = QuantumCircuit(2, 2).x(0)
        qc.measure(0, 1)
        qc.measure(1, 0)
        dist = sim.ideal_distribution(qc)
        assert dist == {"10": 1.0}

    def test_noncontiguous_clbits_rejected(self, sim):
        qc = QuantumCircuit(3, 3).h(0)
        qc.measure(0, 0)
        qc.measure(1, 2)
        with pytest.raises(SimulationError):
            sim.ideal_distribution(qc)

    def test_distribution_sums_to_one(self, sim, ghz4):
        dist = sim.ideal_distribution(ghz4)
        assert np.isclose(sum(dist.values()), 1.0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from(["h", "x", "s", "t"]), min_size=1, max_size=6))
    def test_random_1q_circuits_normalised(self, names):
        from repro.circuits import Gate

        qc = QuantumCircuit(2)
        for i, name in enumerate(names):
            qc.apply_gate(Gate(name), i % 2)
        qc.measure_all()
        dist = StatevectorSimulator().ideal_distribution(qc)
        assert np.isclose(sum(dist.values()), 1.0)


class TestMarginalProbabilities:
    def test_marginal_of_product_state(self, sim):
        qc = QuantumCircuit(2).x(0)
        probs = sim.probabilities(qc)
        marg = marginal_probabilities(probs, [0], 2)
        assert np.allclose(marg, [0, 1])

    def test_marginal_keeps_sorted_qubit_order(self, sim):
        # qubit 2 is |1>, qubits 0,1 are |0>
        qc = QuantumCircuit(3).x(2)
        probs = sim.probabilities(qc)
        marg = marginal_probabilities(probs, [0, 2], 3)
        # bit 0 = qubit 0 (=0), bit 1 = qubit 2 (=1) -> index 2
        assert np.isclose(marg[2], 1.0)

    def test_marginal_total_mass(self, sim, ghz4):
        probs = sim.probabilities(ghz4)
        marg = marginal_probabilities(probs, [1, 2], 4)
        assert np.isclose(marg.sum(), 1.0)

    def test_keep_all_is_identity(self, sim, bell):
        probs = sim.probabilities(bell)
        assert np.allclose(marginal_probabilities(probs, [0, 1], 2), probs)


class TestSampling:
    def test_sample_counts_total(self, sim, bell):
        counts = sim.sample(bell, shots=1000, rng=np.random.default_rng(0))
        assert sum(counts.values()) == 1000
        assert set(counts) <= {"00", "11"}

    def test_sample_reproducible(self, sim, bell):
        a = sim.sample(bell, 500, rng=np.random.default_rng(42))
        b = sim.sample(bell, 500, rng=np.random.default_rng(42))
        assert a == b

    def test_expectation_diagonal(self, sim):
        qc = QuantumCircuit(1).x(0)
        value = sim.expectation_diagonal(qc, np.array([0.0, 3.0]))
        assert np.isclose(value, 3.0)

    def test_expectation_dimension_check(self, sim):
        with pytest.raises(SimulationError):
            sim.expectation_diagonal(QuantumCircuit(1), np.zeros(4))


class TestApplyGateFunction:
    def test_two_qubit_gate_on_nonadjacent_qubits(self):
        state = np.zeros(8, dtype=complex)
        state[1] = 1.0  # qubit 0 set
        out = apply_gate_to_statevector(state, gate_matrix("cx"), (0, 2), 3)
        assert np.isclose(abs(out[5]), 1.0)  # qubits 0 and 2 set

    def test_dimension_mismatch(self):
        state = np.zeros(4, dtype=complex)
        state[0] = 1.0
        with pytest.raises(SimulationError):
            apply_gate_to_statevector(state, gate_matrix("cx"), (0,), 2)


class TestIdealPmf:
    """The int64-code spine behind ideal_distribution/sample."""

    def test_matches_string_view(self, sim):
        qc = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2).measure_all()
        pmf = sim.ideal_pmf(qc)
        dist = sim.ideal_distribution(qc)
        assert pmf.as_dict() == dist
        assert pmf.num_bits == 3
        assert np.isclose(pmf.probs.sum(), 1.0)

    def test_partial_measurement_clbit_order(self, sim):
        # Measure qubits (2, 0) into clbits (1, 0): outcome string is
        # "q2 q0" in IBM order.
        qc = QuantumCircuit(3).x(2).measure(0, 0).measure(2, 1)
        pmf = sim.ideal_pmf(qc)
        assert pmf.as_dict() == {"10": 1.0}

    def test_codes_sorted_and_deduplicated(self, sim):
        qc = QuantumCircuit(2).h(0).h(1).measure_all()
        pmf = sim.ideal_pmf(qc)
        assert list(pmf.codes) == sorted(set(pmf.codes))
        assert len(pmf.codes) == 4

    def test_requires_measurements(self, sim):
        with pytest.raises(SimulationError):
            sim.ideal_pmf(QuantumCircuit(2).h(0))
