"""Tests for the sparse PMF and Marginal types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import PMF, Marginal
from repro.exceptions import PMFError


class TestConstruction:
    def test_normalises_by_default(self):
        pmf = PMF({"0": 1.0, "1": 3.0})
        assert pmf["1"] == pytest.approx(0.75)

    def test_no_normalise_keeps_values(self):
        pmf = PMF({"0": 0.2, "1": 0.2}, normalize=False)
        assert pmf.total() == pytest.approx(0.4)

    def test_zero_entries_dropped(self):
        pmf = PMF({"00": 0.5, "01": 0.0, "11": 0.5})
        assert "01" not in pmf
        assert pmf.support_size == 2

    def test_empty_rejected(self):
        with pytest.raises(PMFError):
            PMF({})

    def test_all_zero_rejected(self):
        with pytest.raises(PMFError):
            PMF({"0": 0.0})

    def test_negative_rejected(self):
        with pytest.raises(PMFError):
            PMF({"0": -0.1, "1": 1.1})

    def test_inconsistent_widths_rejected(self):
        with pytest.raises(PMFError):
            PMF({"0": 0.5, "01": 0.5})

    def test_non_bitstring_rejected(self):
        with pytest.raises(PMFError):
            PMF({"0x": 1.0})

    def test_num_bits_check(self):
        with pytest.raises(PMFError):
            PMF({"01": 1.0}, num_bits=3)

    def test_from_counts(self):
        pmf = PMF.from_counts({"00": 750, "11": 250})
        assert pmf["00"] == pytest.approx(0.75)

    def test_uniform(self):
        pmf = PMF.uniform(["00", "01", "10"])
        assert pmf["01"] == pytest.approx(1 / 3)


class TestQueries:
    def test_prob_default_zero(self):
        pmf = PMF({"0": 1.0})
        assert pmf.prob("1") == 0.0

    def test_getitem_raises_for_missing(self):
        with pytest.raises(KeyError):
            PMF({"0": 1.0})["1"]

    def test_top_and_mode(self):
        pmf = PMF({"00": 0.5, "01": 0.3, "10": 0.2})
        assert pmf.mode() == "00"
        assert [k for k, _ in pmf.top(2)] == ["00", "01"]

    def test_top_ties_deterministic(self):
        pmf = PMF({"00": 0.5, "11": 0.5})
        assert pmf.top(1)[0][0] == "00"  # lexicographic tie-break

    def test_len_and_iter(self):
        pmf = PMF({"0": 0.4, "1": 0.6})
        assert len(pmf) == 2
        assert set(pmf) == {"0", "1"}


class TestMarginalisation:
    def test_paper_marginal(self):
        """Marginalising the Fig. 6 global PMF onto (Q1, Q0)."""
        pmf = PMF(
            {
                "000": 0.10, "001": 0.10, "010": 0.15, "011": 0.15,
                "100": 0.10, "101": 0.05, "110": 0.15, "111": 0.20,
            }
        )
        marg = pmf.marginal([1, 0])
        assert marg["00"] == pytest.approx(0.20)
        assert marg["01"] == pytest.approx(0.15)
        assert marg["10"] == pytest.approx(0.30)
        assert marg["11"] == pytest.approx(0.35)

    def test_single_bit_marginal(self):
        pmf = PMF({"10": 0.7, "01": 0.3})
        assert pmf.marginal([0]).prob("0") == pytest.approx(0.7)

    def test_invalid_positions(self):
        pmf = PMF({"01": 1.0})
        with pytest.raises(PMFError):
            pmf.marginal([5])
        with pytest.raises(PMFError):
            pmf.marginal([])
        with pytest.raises(PMFError):
            pmf.marginal([0, 0])

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=15).map(lambda i: format(i, "04b")),
            st.floats(min_value=0.01, max_value=1.0),
            min_size=1,
            max_size=16,
        )
    )
    def test_marginal_mass_conserved(self, raw):
        pmf = PMF(raw)
        marg = pmf.marginal([2, 0])
        assert sum(marg.values()) == pytest.approx(1.0)

    def test_restrict(self):
        pmf = PMF({"00": 0.5, "01": 0.3, "10": 0.2})
        sub = pmf.restrict(["00", "10"])
        assert sub["00"] == pytest.approx(0.5 / 0.7)

    def test_restrict_empty_rejected(self):
        with pytest.raises(PMFError):
            PMF({"0": 1.0}).restrict(["1"])


class TestMarginalType:
    def test_qubits_sorted(self):
        marginal = Marginal((3, 1), PMF({"00": 0.5, "11": 0.5}))
        assert marginal.qubits == (1, 3)

    def test_width_mismatch_rejected(self):
        with pytest.raises(PMFError):
            Marginal((0, 1, 2), PMF({"00": 1.0}))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(PMFError):
            Marginal((1, 1), PMF({"00": 1.0}))

    def test_agrees_with_exact_marginal(self):
        global_pmf = PMF({"000": 0.5, "111": 0.5})
        marginal = Marginal((0, 1), PMF({"00": 0.5, "11": 0.5}))
        assert marginal.agrees_with(global_pmf) == pytest.approx(0.0)

    def test_disagreement_measured(self):
        global_pmf = PMF({"000": 1.0})
        marginal = Marginal((0, 1), PMF({"11": 1.0}))
        assert marginal.agrees_with(global_pmf) == pytest.approx(1.0)
