"""The serving tier: N-worker determinism, crash-replay, quotas, events.

The load-bearing claims (ISSUE acceptance criteria):

* Results from N concurrent drain workers — any placement, any arrival
  order, any crash/retry schedule — are **bit-for-bit** equal to a solo
  ``Session.run`` of the same spec, for every scheme.
* A worker crash mid-batch re-queues its jobs (bounded retries with
  backoff) and the tier converges; retry exhaustion fails the job with a
  typed terminal error rather than hanging it.
* Per-tenant rate limits and quotas reject with typed
  :class:`~repro.exceptions.AdmissionError` subclasses, and a flooding
  tenant can never starve the others past the fair-share cap — asserted
  by a property test over random submission schedules.
"""

from __future__ import annotations

import asyncio
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import ibmq_toronto
from repro.exceptions import (
    AdmissionError,
    QuotaExceededError,
    RateLimitError,
    ServiceError,
)
from repro.runtime import Session
from repro.service import JobSpec, MitigationService
from repro.service.job import SERVICE_SCHEMES, JobStatus
from repro.service.queue import FairShareQueue
from repro.service.tier import (
    AdmissionController,
    ServiceSupervisor,
    TenantPolicy,
    TokenBucket,
)
from repro.service.tier.stats import LatencyHistogram, TierStats
from repro.workloads import workload_by_name

DEVICES = {"toronto": ibmq_toronto}


def solo_payload(spec: JobSpec, supervisor: ServiceSupervisor) -> dict:
    """The payload a solo, equally-parameterised session produces."""
    factory = DEVICES[spec.device]
    kwargs = supervisor._engine_kwargs
    with Session(
        factory(),
        seed=spec.seed,
        total_trials=spec.total_trials,
        exact=spec.exact,
        compile_attempts=kwargs["compile_attempts"],
        cpm_attempts=kwargs["cpm_attempts"],
        ensemble_size=kwargs["ensemble_size"],
    ) as session:
        workload = workload_by_name(spec.workload)
        prepared = session.prepare_scheme(spec.scheme, workload)
        result = session._run_prepared(prepared)
        return MitigationService._payload(spec, result)


def spec(i=0, tenant="a", workload="GHZ-4", scheme="baseline", **kw):
    return JobSpec(
        tenant=tenant, workload=workload, scheme=scheme, seed=i, **kw
    )


class TestDeterminism:
    @pytest.mark.parametrize("placement", ["shared", "round_robin"])
    def test_all_schemes_bitforbit_solo_at_three_workers(self, placement):
        """Every scheme through 3 concurrent workers == solo session."""
        specs = [
            JobSpec(
                tenant=f"t{i % 2}", workload="GHZ-6", scheme=scheme, seed=5
            )
            for i, scheme in enumerate(SERVICE_SCHEMES)
        ]
        with ServiceSupervisor(
            devices=DEVICES, workers=3, placement=placement
        ) as sup:
            jobs = [sup.submit(s) for s in specs]
            for job in jobs:
                sup.wait(job, timeout=300)
            for s, job in zip(specs, jobs):
                assert job.status is JobStatus.DONE, job.error
                assert job.result == solo_payload(s, sup)

    def test_sampled_mode_bitforbit_solo(self):
        specs = [
            spec(i, scheme="jigsaw", workload="GHZ-5", exact=False,
                 total_trials=2048)
            for i in range(4)
        ]
        with ServiceSupervisor(devices=DEVICES, workers=2) as sup:
            jobs = [sup.submit(s) for s in specs]
            for s, job in zip(specs, jobs):
                sup.wait(job, timeout=300)
                assert job.result == solo_payload(s, sup)

    def test_worker_count_and_arrival_order_invariant(self):
        """Same stream, different worker counts and orders: same payloads."""
        specs = [
            spec(i, tenant=f"t{i % 3}", workload="GHZ-5",
                 scheme=("jigsaw", "mbm", "edm")[i % 3])
            for i in range(6)
        ]
        by_fingerprint = {}
        for workers, order in ((1, 1), (2, -1), (4, 1)):
            with ServiceSupervisor(devices=DEVICES, workers=workers) as sup:
                jobs = [sup.submit(s) for s in specs[::order]]
                for job in jobs:
                    sup.wait(job, timeout=300)
                    assert job.status is JobStatus.DONE, job.error
                    expected = by_fingerprint.setdefault(
                        job.fingerprint, job.result
                    )
                    assert job.result == expected

    def test_cross_worker_memoization_via_shared_store(self):
        with ServiceSupervisor(devices=DEVICES, workers=2) as sup:
            first = sup.submit(spec(1))
            sup.wait(first, timeout=300)
            second = sup.submit(spec(1))
            sup.wait(second, timeout=300)
            assert second.source == "memoized"
            assert second.result == first.result


class TestCrashReplay:
    def test_crash_mid_batch_retries_and_converges(self):
        crashes = {"left": 2}
        lock = threading.Lock()

        def injector(worker, batch):
            with lock:
                if crashes["left"] > 0:
                    crashes["left"] -= 1
                    raise RuntimeError("injected crash")

        with ServiceSupervisor(
            devices=DEVICES, workers=2, max_retries=3, backoff_base=0.01,
            fault_injector=injector,
        ) as sup:
            job = sup.submit(spec(2, scheme="jigsaw"))
            sup.wait(job, timeout=300)
            assert job.status is JobStatus.DONE, job.error
            # The payload survived the crash schedule bit-for-bit.
            assert job.result == solo_payload(job.spec, sup)
            kinds = [e.kind for e in sup.events(job)]
            assert "retrying" in kinds and "requeued" in kinds
            assert kinds[-1] == "done"
            stats = sup.tier_stats()
            assert stats["latency"]["worker_crashes"] >= 1
            assert stats["jobs"]["retried"] >= 1
            # Crashed lanes were respawned: the pool is whole again.
            assert all(w["alive"] for w in stats["workers"])

    def test_retry_exhaustion_fails_terminally(self):
        def injector(worker, batch):
            raise RuntimeError("always crashes")

        sup = ServiceSupervisor(
            devices=DEVICES, workers=1, max_retries=2, backoff_base=0.01,
            fault_injector=injector,
        )
        sup.start()
        try:
            job = sup.submit(spec(3))
            sup.wait(job, timeout=60)
            assert job.status is JobStatus.FAILED
            assert job.attempts == 2
            assert "crashed" in job.error
            kinds = [e.kind for e in sup.events(job)]
            assert kinds.count("retrying") == 2
            assert kinds[-1] == "failed"
        finally:
            sup.stop(drain=False)

    def test_deterministic_failure_is_not_retried(self):
        """A bad spec fails identically every time: no retry burned."""
        with ServiceSupervisor(
            devices=DEVICES, workers=1, max_retries=3
        ) as sup:
            # MBM on an 18-bit output exceeds MAX_MBM_QUBITS (16); the
            # check fires at preparation — a deterministic failure that
            # must settle terminally without consuming the retry budget.
            job = sup.submit(
                JobSpec(tenant="a", workload="GHZ-18", scheme="mbm",
                        total_trials=1024)
            )
            sup.wait(job, timeout=300)
            assert job.status is JobStatus.FAILED
            assert "MBM" in job.error
            assert job.attempts == 0
            kinds = [e.kind for e in sup.events(job)]
            assert "retrying" not in kinds
            with pytest.raises(ServiceError, match="failed"):
                sup.result(job)

    def test_graceful_drain_settles_everything(self):
        sup = ServiceSupervisor(devices=DEVICES, workers=2)
        sup.start()
        jobs = [sup.submit(spec(i, tenant=f"t{i % 3}")) for i in range(6)]
        sup.stop(drain=True, timeout=300)
        assert all(job.done for job in jobs)
        assert sup.tier_stats()["jobs"]["open"] == 0
        sup.close()


class TestEventsAndAsync:
    def test_watch_streams_lifecycle_in_order(self):
        with ServiceSupervisor(devices=DEVICES, workers=1) as sup:
            job = sup.submit(spec(4))
            events = list(sup.watch(job, timeout=300))
            kinds = [e.kind for e in events]
            assert kinds[0] == "queued"
            assert kinds[-1] == "done"
            assert "running" in kinds
            assert [e.seq for e in events] == list(range(1, len(events) + 1))
            # A late watcher replays the full history and still ends.
            assert [e.kind for e in sup.watch(job, timeout=1)] == kinds
            # Resume from a midpoint.
            tail = [e.kind for e in sup.watch(job, after_seq=1, timeout=1)]
            assert tail == kinds[1:]

    def test_memoized_submit_emits_terminal_events(self):
        with ServiceSupervisor(devices=DEVICES, workers=1) as sup:
            first = sup.submit(spec(5))
            sup.wait(first, timeout=300)
            second = sup.submit(spec(5))
            kinds = [e.kind for e in sup.watch(second, timeout=5)]
            assert kinds == ["queued", "done"]

    def test_asyncio_surface(self):
        async def scenario(sup):
            job = await sup.asubmit(spec(6, scheme="edm"))
            kinds = []
            async for event in sup.awatch(job, timeout=300):
                kinds.append(event.kind)
            payload = await sup.aresult(job, timeout=5)
            return job, kinds, payload

        with ServiceSupervisor(devices=DEVICES, workers=2) as sup:
            job, kinds, payload = asyncio.run(scenario(sup))
            assert kinds[-1] == "done"
            assert payload == job.result == solo_payload(job.spec, sup)

    def test_poll_reports_status_row(self):
        with ServiceSupervisor(devices=DEVICES, workers=1) as sup:
            job = sup.submit(spec(7))
            sup.wait(job, timeout=300)
            row = sup.poll(job.job_id)
            assert row["status"] == "done"
            assert row["attempts"] == 0
            assert row["events"] >= 3

    def test_tier_stats_shape(self):
        with ServiceSupervisor(devices=DEVICES, workers=2) as sup:
            sup.wait(sup.submit(spec(8)), timeout=300)
            stats = sup.tier_stats()
            assert stats["jobs"]["executed"] == 1
            assert len(stats["workers"]) == 2
            latency = stats["latency"]
            assert latency["batches"] >= 1
            assert latency["avg_batch_occupancy"] >= 1
            for stage in ("queue_wait", "prepare", "execute", "job_total"):
                assert latency["stages"][stage]["count"] >= 1


class TestAdmission:
    def test_rate_limit_is_typed_and_carries_retry_after(self):
        fake = {"t": 0.0}
        sup = ServiceSupervisor(
            devices=DEVICES, workers=1,
            policies={"a": TenantPolicy(rate=1.0, burst=1)},
            clock=lambda: fake["t"],
        )
        sup.start()
        try:
            sup.submit(spec(10))
            with pytest.raises(RateLimitError) as err:
                sup.submit(spec(11))
            assert isinstance(err.value, AdmissionError)
            assert err.value.retry_after == pytest.approx(1.0)
            fake["t"] += 2.0  # the bucket refills; quota would not
            sup.submit(spec(12))
        finally:
            sup.stop(drain=True, timeout=300)
            sup.close()

    def test_quota_is_typed_and_never_refills(self):
        fake = {"t": 0.0}
        sup = ServiceSupervisor(
            devices=DEVICES, workers=1,
            policies={"a": TenantPolicy(trial_budget=40_000)},
            clock=lambda: fake["t"],
        )
        sup.start()
        try:
            sup.submit(spec(13))  # 32768 of the 40000 budget
            with pytest.raises(QuotaExceededError) as err:
                sup.submit(spec(14))
            assert isinstance(err.value, AdmissionError)
            fake["t"] += 1e6  # time cannot refill a quota
            with pytest.raises(QuotaExceededError):
                sup.submit(spec(15))
            stats = sup.tier_stats()["admission"]
            assert stats["rejected_quota"] == 2
            assert stats["trials_used"]["a"] == 32_768
        finally:
            sup.stop(drain=True, timeout=300)
            sup.close()

    def test_memoized_resubmission_is_quota_free(self):
        sup = ServiceSupervisor(
            devices=DEVICES, workers=1,
            policies={"a": TenantPolicy(trial_budget=40_000)},
        )
        sup.start()
        try:
            first = sup.submit(spec(16))
            sup.wait(first, timeout=300)
            # Identical resubmission is served from the store: free.
            for _ in range(3):
                assert sup.submit(spec(16)).source == "memoized"
            assert (
                sup.tier_stats()["admission"]["trials_used"]["a"] == 32_768
            )
        finally:
            sup.stop(drain=True, timeout=300)
            sup.close()

    def test_token_bucket_refills_to_burst(self):
        fake = {"t": 0.0}
        bucket = TokenBucket(rate=2.0, burst=4, clock=lambda: fake["t"])
        for _ in range(4):
            bucket.consume()
        with pytest.raises(RateLimitError) as err:
            bucket.consume()
        assert err.value.retry_after == pytest.approx(0.5)
        fake["t"] += 100.0
        assert bucket.available() == pytest.approx(4.0)  # capped at burst


class TestFairnessProperty:
    """Adversarial tenancy: a flooder cannot starve others, ever."""

    @given(
        flood=st.integers(min_value=8, max_value=40),
        others=st.lists(
            st.sampled_from(["b", "c", "d"]), min_size=1, max_size=12
        ),
        interleave=st.lists(st.booleans(), min_size=8, max_size=52),
    )
    @settings(max_examples=40, deadline=None)
    def test_flooder_capped_others_admitted(self, flood, others, interleave):
        """Random schedules of a flooding tenant vs small tenants: the
        flooder never exceeds the fair-share cap, and *every* small
        tenant submission within its own cap is admitted."""
        queue = FairShareQueue(capacity=16, fair_share=0.25, lanes=2)
        controller = AdmissionController(
            queue,
            policies={"flood": TenantPolicy(trial_budget=10_000_000)},
        )
        flood_specs = iter(range(flood))
        other_specs = iter(others)
        schedule = list(interleave)
        admitted_flood = rejected_flood = 0
        lane = 0
        while True:
            take_flood = schedule.pop(0) if schedule else True
            if take_flood:
                index = next(flood_specs, None)
                if index is None:
                    break
                job = _job("flood", seed=index)
                try:
                    controller.admit(job, lane=lane % 2)
                    admitted_flood += 1
                except AdmissionError:
                    rejected_flood += 1
            else:
                tenant = next(other_specs, None)
                if tenant is None:
                    continue
                # Small tenants stay under their own cap, so admission
                # must NEVER reject them, no matter the flood pressure.
                held = queue.pending_by_tenant().get(tenant, 0)
                job = _job(tenant, seed=lane)
                if held < queue.tenant_cap and len(queue) < queue.capacity:
                    controller.admit(job, lane=lane % 2)
                else:
                    with pytest.raises(AdmissionError):
                        controller.admit(job, lane=lane % 2)
            lane += 1
            # Invariant: the flooder never holds more than the cap.
            assert (
                queue.pending_by_tenant().get("flood", 0) <= queue.tenant_cap
            )
        assert admitted_flood <= queue.tenant_cap
        if flood > queue.tenant_cap:
            assert rejected_flood > 0


def _job(tenant, seed=0):
    from repro.service.job import Job

    return Job(
        spec=JobSpec(tenant=tenant, workload="GHZ-4", seed=seed),
        fingerprint=f"fp-{tenant}-{seed}",
    )


class TestStats:
    def test_histogram_buckets_and_moments(self):
        histogram = LatencyHistogram(bounds=[0.1, 1.0])
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["min_seconds"] == 0.05
        assert snap["max_seconds"] == 5.0
        assert snap["mean_seconds"] == pytest.approx(5.55 / 3)
        assert snap["buckets"] == {"le_0.1": 1, "le_1": 1, "inf": 1}

    def test_tier_stats_counters(self):
        stats = TierStats()
        stats.record_batch(3)
        stats.record_batch(1)
        stats.record_retry()
        stats.observe("execute", 0.25)
        snap = stats.snapshot()
        assert snap["batches"] == 2
        assert snap["avg_batch_occupancy"] == 2.0
        assert snap["retries"] == 1
        assert snap["stages"]["execute"]["count"] == 1
