"""Unit and property tests for bitstring utilities."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    all_bitstrings,
    bit_array_to_indices,
    bit_array_to_strings,
    bit_positions,
    bitstring_to_index,
    extract_bits,
    hamming_distance,
    index_to_bitstring,
    indices_to_bit_array,
)


class TestConversions:
    def test_index_to_bitstring_ibm_order(self):
        # bit 0 is the rightmost character
        assert index_to_bitstring(1, 3) == "001"
        assert index_to_bitstring(4, 3) == "100"

    def test_round_trip(self):
        for i in range(16):
            assert bitstring_to_index(index_to_bitstring(i, 4)) == i

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            index_to_bitstring(8, 3)
        with pytest.raises(ValueError):
            index_to_bitstring(-1, 3)

    def test_invalid_bitstring(self):
        with pytest.raises(ValueError):
            bitstring_to_index("01x")
        with pytest.raises(ValueError):
            bitstring_to_index("")

    def test_all_bitstrings(self):
        assert all_bitstrings(2) == ["00", "01", "10", "11"]

    def test_bit_positions(self):
        assert bit_positions("101") == (2, 0)
        assert bit_positions("000") == ()


class TestExtractBits:
    def test_paper_projection_example(self):
        """Fig. 6 step 1: projecting Q2Q1Q0 onto (Q1, Q0)."""
        assert extract_bits("000", (1, 0)) == "00"
        assert extract_bits("100", (1, 0)) == "00"
        assert extract_bits("011", (1, 0)) == "11"
        assert extract_bits("110", (2, 1)) == "11"

    def test_single_position(self):
        assert extract_bits("100", (2,)) == "1"
        assert extract_bits("100", (0,)) == "0"

    def test_order_is_descending_positions(self):
        # positions listed in any order yield the same IBM-order result
        assert extract_bits("110", (0, 2)) == extract_bits("110", (2, 0))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            extract_bits("01", (5,))

    @given(st.integers(min_value=0, max_value=255))
    def test_extract_matches_integer_bits(self, value):
        bits = index_to_bitstring(value, 8)
        for pos in range(8):
            assert extract_bits(bits, (pos,)) == str((value >> pos) & 1)


class TestHamming:
    def test_distance(self):
        assert hamming_distance("0000", "1111") == 4
        assert hamming_distance("0101", "0101") == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance("01", "011")


class TestVectorised:
    def test_indices_to_bit_array_columns(self):
        bits = indices_to_bit_array(np.array([0, 1, 2, 5]), 3)
        # column c holds bit c (LSB first)
        assert bits[1].tolist() == [1, 0, 0]
        assert bits[2].tolist() == [0, 1, 0]
        assert bits[3].tolist() == [1, 0, 1]

    def test_round_trip_vectorised(self):
        indices = np.arange(32)
        assert np.array_equal(
            bit_array_to_indices(indices_to_bit_array(indices, 5)), indices
        )

    def test_bit_array_to_strings_matches_scalar(self):
        indices = np.array([0, 3, 6])
        strings = bit_array_to_strings(indices_to_bit_array(indices, 3))
        assert strings == [index_to_bitstring(int(i), 3) for i in indices]

    @given(st.lists(st.integers(min_value=0, max_value=1023), min_size=1, max_size=50))
    def test_vectorised_consistency(self, values):
        indices = np.array(values)
        strings = bit_array_to_strings(indices_to_bit_array(indices, 10))
        assert strings == [index_to_bitstring(v, 10) for v in values]
