"""Tests for the density-matrix simulator (the noise-channel oracle)."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import SimulationError
from repro.sim import (
    DensityMatrixSimulator,
    StatevectorSimulator,
    apply_operator_to_density_matrix,
    depolarizing_kraus,
    expand_operator,
)
from repro.circuits.gates import gate_matrix


@pytest.fixture
def dm():
    return DensityMatrixSimulator()


class TestExpandOperator:
    def test_expand_single_qubit(self):
        x = gate_matrix("x")
        full = expand_operator(x, (1,), 2)
        # X on qubit 1: |00> -> |10>
        state = np.zeros(4)
        state[0] = 1.0
        assert np.isclose(abs((full @ state)[2]), 1.0)

    def test_expand_matches_kron(self):
        h = gate_matrix("h")
        full = expand_operator(h, (0,), 2)
        assert np.allclose(full, np.kron(np.eye(2), h))

    def test_expand_two_qubit(self):
        cx = gate_matrix("cx")
        full = expand_operator(cx, (0, 1), 2)
        # control qubit 0 (first arg): |01> -> |11>
        state = np.zeros(4)
        state[1] = 1.0
        assert np.isclose(abs((full @ state)[3]), 1.0)

    def test_dimension_check(self):
        with pytest.raises(SimulationError):
            expand_operator(np.eye(2), (0, 1), 2)


class TestApplyOperatorKernel:
    """The fast reshape/moveaxis kernel against the expand_operator oracle."""

    def _random_rho(self, rng, n):
        raw = rng.normal(size=(1 << n, 1 << n)) + 1j * rng.normal(
            size=(1 << n, 1 << n)
        )
        rho = raw @ raw.conj().T
        return rho / np.trace(rho)

    @pytest.mark.parametrize("qubits", [(0,), (2,), (0, 1), (3, 1), (2, 0)])
    def test_matches_oracle_on_random_operators(self, qubits):
        rng = np.random.default_rng(7)
        n = 4
        rho = self._random_rho(rng, n)
        k = len(qubits)
        op = rng.normal(size=(1 << k, 1 << k)) + 1j * rng.normal(
            size=(1 << k, 1 << k)
        )
        full = expand_operator(op, qubits, n)
        want = full @ rho @ full.conj().T
        got = apply_operator_to_density_matrix(rho, op, qubits, n)
        assert np.allclose(got, want, atol=1e-12)

    def test_matches_oracle_on_gates(self):
        rng = np.random.default_rng(3)
        rho = self._random_rho(rng, 3)
        for name, qubits in [("h", (1,)), ("cx", (0, 2)), ("swap", (2, 1))]:
            op = gate_matrix(name)
            full = expand_operator(op, qubits, 3)
            want = full @ rho @ full.conj().T
            got = apply_operator_to_density_matrix(rho, op, qubits, 3)
            assert np.allclose(got, want, atol=1e-12), name

    def test_dimension_checks(self):
        rho = np.eye(4, dtype=complex) / 4
        with pytest.raises(SimulationError):
            apply_operator_to_density_matrix(rho, np.eye(2), (0, 1), 2)
        with pytest.raises(SimulationError):
            apply_operator_to_density_matrix(np.eye(3), np.eye(2), (0,), 2)


class TestDepolarizingKraus:
    @pytest.mark.parametrize("p", [0.0, 0.1, 0.5, 1.0])
    @pytest.mark.parametrize("k", [1, 2])
    def test_completeness(self, p, k):
        kraus = depolarizing_kraus(p, k)
        total = sum(op.conj().T @ op for op in kraus)
        assert np.allclose(total, np.eye(2 ** k))

    def test_full_depolarizing_gives_maximally_mixed(self, dm):
        qc = QuantumCircuit(1).x(0)
        probs = dm.probabilities(qc, gate_error_1q=1.0)
        # p=1 leaves weight 1/4 on identity: 3/4 mixing of X-result
        assert probs[0] > 0.3

    def test_invalid_probability(self):
        with pytest.raises(SimulationError):
            depolarizing_kraus(1.5)

    def test_unsupported_arity(self):
        with pytest.raises(SimulationError):
            depolarizing_kraus(0.1, 3)


class TestAgainstStatevector:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: QuantumCircuit(2).h(0).cx(0, 1).measure_all(),
            lambda: QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2).measure_all(),
            lambda: QuantumCircuit(2).x(0).rz(0.3, 0).h(1).measure_all(),
            lambda: QuantumCircuit(2).rzz(0.7, 0, 1).h(0).measure_all(),
        ],
    )
    def test_noiseless_matches_statevector(self, dm, builder):
        qc = builder()
        sv_dist = StatevectorSimulator().ideal_distribution(qc)
        dm_dist = dm.measured_distribution(qc)
        for key in set(sv_dist) | set(dm_dist):
            assert np.isclose(
                sv_dist.get(key, 0.0), dm_dist.get(key, 0.0), atol=1e-9
            )

    def test_max_qubits_guard(self):
        small = DensityMatrixSimulator(max_qubits=2)
        with pytest.raises(SimulationError):
            small.probabilities(QuantumCircuit(3))


class TestNoiseBehaviour:
    def test_depolarizing_reduces_peak(self, dm, bell):
        clean = dm.measured_distribution(bell)
        noisy = dm.measured_distribution(bell, gate_error_2q=0.2)
        assert noisy["00"] < clean["00"]
        assert noisy.get("01", 0.0) > 0.0

    def test_probabilities_stay_normalised(self, dm, bell):
        noisy = dm.measured_distribution(bell, gate_error_1q=0.05, gate_error_2q=0.1)
        assert np.isclose(sum(noisy.values()), 1.0)

    def test_readout_confusion_applied(self, dm):
        qc = QuantumCircuit(1).x(0).measure(0, 0)
        conf = {0: np.array([[0.9, 0.2], [0.1, 0.8]])}
        dist = dm.measured_distribution(qc, readout_confusions=conf)
        assert np.isclose(dist["1"], 0.8)
        assert np.isclose(dist["0"], 0.2)

    def test_readout_confusion_per_qubit(self, dm):
        qc = QuantumCircuit(2).x(0).measure(0, 0).measure(1, 1)
        conf = {
            0: np.array([[0.95, 0.3], [0.05, 0.7]]),
            1: np.array([[1.0, 0.0], [0.0, 1.0]]),
        }
        dist = dm.measured_distribution(qc, readout_confusions=conf)
        # qubit 0 is |1>: read correctly with 0.7; qubit 1 perfect
        assert np.isclose(dist["01"], 0.7)
        assert np.isclose(dist["00"], 0.3)

    def test_invalid_confusion_shape(self, dm):
        qc = QuantumCircuit(1).measure(0, 0)
        with pytest.raises(SimulationError):
            dm.measured_distribution(
                qc, readout_confusions={0: np.eye(3)}
            )

    def test_requires_measurements(self, dm):
        with pytest.raises(SimulationError):
            dm.measured_distribution(QuantumCircuit(1).h(0))

    def test_density_matrix_trace_one(self, dm, bell):
        rho = dm.final_density_matrix(bell, gate_error_2q=0.1)
        assert np.isclose(np.trace(rho).real, 1.0)

    def test_density_matrix_hermitian(self, dm, bell):
        rho = dm.final_density_matrix(bell, gate_error_2q=0.1)
        assert np.allclose(rho, rho.conj().T)
