"""Tests for the Session API: parity with SchemeRunner, caching, budgets."""

import warnings

import pytest

from repro.core import JigSaw, JigSawConfig, JigSawM, JigSawMConfig
from repro.exceptions import ExperimentError
from repro.experiments import SCHEME_NAMES, SchemeRunner
from repro.runtime import (
    CompilationCache,
    ExecutionRequest,
    LocalExactBackend,
    Session,
)
from repro.workloads import ghz, qaoa_maxcut
from tests.conftest import make_varied_line_device


@pytest.fixture(scope="module")
def device():
    return make_varied_line_device(num_qubits=8)


def make_scheme_runner(device, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return SchemeRunner(device, **kwargs)


class TestSchemeParity:
    """Session.run_scheme == SchemeRunner bit-for-bit under a fixed seed."""

    def test_all_schemes_bitforbit_exact(self, device):
        workload = ghz(6)
        session = Session(device, seed=0, exact=True)
        legacy = make_scheme_runner(device, seed=0, exact=True)
        for scheme in SCHEME_NAMES:
            new = session.run_scheme(scheme, workload)
            old = legacy.run_scheme(scheme, workload)
            assert new.as_dict() == old.as_dict(), scheme

    def test_all_schemes_bitforbit_sampled(self, device):
        workload = ghz(6)
        for scheme in SCHEME_NAMES:
            # Fresh contexts per scheme: sampled mode consumes shared RNG
            # streams, so run order matters (as it always has).
            session = Session(
                device, seed=3, exact=False, total_trials=4_096
            )
            legacy = make_scheme_runner(
                device, seed=3, exact=False, total_trials=4_096
            )
            new = session.run_scheme(scheme, workload)
            old = legacy.run_scheme(scheme, workload)
            assert new.as_dict() == old.as_dict(), scheme

    def test_scheme_runner_is_deprecated_session(self, device):
        with pytest.warns(DeprecationWarning):
            runner = SchemeRunner(device, seed=0)
        assert isinstance(runner, Session)

    def test_unknown_scheme(self, device):
        with pytest.raises(ExperimentError):
            Session(device, seed=0).run_scheme("magic", ghz(4))


class TestPlanRunAPI:
    def test_plan_then_run_matches_run_scheme(self, device):
        workload = ghz(6)
        a = Session(device, seed=0, exact=True)
        b = Session(device, seed=0, exact=True)
        planned = a.run(a.plan(workload, scheme="jigsaw"))
        direct = b.run_scheme("jigsaw", workload)
        assert planned.output_pmf.as_dict() == direct.as_dict()

    def test_plan_then_run_matches_run_scheme_sampled(self, device):
        # plan()+run() and run_scheme() must share one per-scheme RNG
        # stream, or the two paths diverge under sampling.
        workload = ghz(6)
        a = Session(device, seed=4, exact=False, total_trials=4_096)
        b = Session(device, seed=4, exact=False, total_trials=4_096)
        planned = a.run(a.plan(workload, scheme="jigsaw"))
        direct = b.run_scheme("jigsaw", workload)
        assert planned.output_pmf.as_dict() == direct.as_dict()

    def test_plan_jigsaw_m(self, device):
        workload = ghz(6)
        session = Session(device, seed=0, exact=True)
        result = session.run(session.plan(workload, scheme="jigsaw_m"))
        assert result.plan.scheme == "jigsaw_m"
        assert result.output_pmf.num_bits == 6

    def test_plan_rejects_unplannable_scheme(self, device):
        with pytest.raises(ExperimentError):
            Session(device, seed=0).plan(ghz(6), scheme="baseline")

    def test_global_executable_shared_across_schemes(self, device):
        workload = ghz(6)
        session = Session(device, seed=0, exact=True)
        first = session.global_executable(workload)
        second = session.global_executable(workload)
        assert first is second
        result = session.run_jigsaw(workload)
        assert result.global_executable is first

    def test_global_executable_keyed_by_content_not_name(self, device):
        session = Session(device, seed=0, exact=True)
        a = ghz(6)
        b = ghz(6)
        b.circuit.name = "same-program-different-name"
        assert session.global_executable(a) is session.global_executable(b)


class TestSessionCache:
    def test_jigsaw_plan_reused_by_jigsaw_mbm(self, device):
        workload = ghz(6)
        session = Session(device, seed=0, exact=True)
        session.run_scheme("jigsaw", workload)
        assert session.cache.hits == 0
        session.run_scheme("jigsaw_mbm", workload)
        assert session.cache.hits == 1

    def test_repeated_scheme_hits_cache(self, device):
        workload = ghz(6)
        session = Session(device, seed=0, exact=True)
        first = session.run_scheme("jigsaw", workload)
        second = session.run_scheme("jigsaw", workload)
        assert session.cache.hits == 1
        assert first.as_dict() == second.as_dict()

    def test_disabled_cache_still_correct(self, device):
        # On a fresh session every first plan misses, so cached and
        # uncached sessions agree scheme by scheme.  (A *second*
        # jigsaw-family run on one session replays the cached
        # compilation instead of recompiling from an advanced RNG
        # stream — deliberately more deterministic than the legacy
        # recompile-every-time behaviour.)
        workload = ghz(6)
        for scheme in ("jigsaw", "jigsaw_mbm"):
            cached = Session(device, seed=0, exact=True)
            uncached = Session(
                device, seed=0, exact=True, cache=CompilationCache.disabled()
            )
            assert (
                cached.run_scheme(scheme, workload).as_dict()
                == uncached.run_scheme(scheme, workload).as_dict()
            ), scheme
            assert uncached.cache.hits == 0

    def test_cache_stats_exposed(self, device):
        session = Session(device, seed=0, exact=True)
        stats = session.cache_stats()
        assert {"hits", "misses", "entries"} <= set(stats)


class TestBudgetConservation:
    """No trial of the budget is silently dropped (satellite fix)."""

    def test_jigsaw_split_folds_remainder(self, device):
        jigsaw = JigSaw(device, JigSawConfig(exact=True), seed=0)
        for total in (1_001, 16_383, 32_768):
            global_trials, per_cpm = jigsaw.split_trials(total, 6)
            assert global_trials + per_cpm * 6 == total

    def test_jigsaw_result_conserves_budget(self, device):
        total = 16_383  # not divisible: 8191 // 6 leaves remainder
        jigsaw = JigSaw(device, JigSawConfig(exact=True), seed=0)
        result = jigsaw.run(ghz(6).circuit, total_trials=total)
        assert result.total_trials == total

    def test_jigsaw_m_result_conserves_budget(self, device):
        total = 16_383
        runner = JigSawM(device, JigSawMConfig(exact=True), seed=0)
        result = runner.run(ghz(6).circuit, total_trials=total)
        assert result.total_trials == total

    def test_exact_mode_tolerates_starved_cpm_allocation(self, device):
        # An extreme global fraction can leave per_cpm == 0; exact mode
        # ignores trial counts and must still run.
        jigsaw = JigSaw(
            device, JigSawConfig(exact=True, global_fraction=0.9), seed=0
        )
        result = jigsaw.run(ghz(6).circuit, total_trials=14)
        assert result.trials_per_cpm == 0
        assert result.total_trials == 14
        assert result.output_pmf.num_bits == 6

    def test_edm_spends_whole_budget(self, device):
        recorded = []

        class RecordingBackend(LocalExactBackend):
            def execute(self, requests):
                recorded.extend(requests)
                return super().execute(requests)

        total = 4_099  # not divisible by the 4-mapping ensemble
        session = Session(device, seed=0, exact=True, total_trials=total)
        session.backend = RecordingBackend(sampler=session.sampler)
        session.run_edm(ghz(6))
        assert sum(r.trials for r in recorded) == total

    def test_edm_merge_weighted_by_allocation(self, device):
        # Regression: merging must weight each mapping's histogram by its
        # trial allocation (pooled counts), not average normalized PMFs —
        # the first mapping carries the integer-division remainder.
        from repro.core.pmf import PMF

        class StubBackend:
            name = "stub"

            def execute(self, requests):
                # Mapping 0 observes all-zeros, the rest all-ones.
                pmfs = [PMF({"0" * 6: 1.0})]
                pmfs.extend(PMF({"1" * 6: 1.0}) for _ in requests[1:])
                return pmfs

        total = 1_003  # 4 mappings -> allocations [253, 250, 250, 250]
        session = Session(device, seed=0, exact=True, total_trials=total)
        session.backend = StubBackend()
        merged = session.run_edm(ghz(6))
        assert merged.prob("0" * 6) == pytest.approx(253 / 1_003)
        assert merged.prob("1" * 6) == pytest.approx(750 / 1_003)


class TestMetricsEvaluation:
    def test_metrics_fields(self, device):
        session = Session(device, seed=0, exact=True)
        workload = qaoa_maxcut(4, depth=1)
        metrics = session.evaluate(workload, session.run_baseline(workload))
        assert 0.0 <= metrics.pst <= 1.0
        assert metrics.arg is not None

    def test_jigsaw_improves_over_baseline(self, device):
        session = Session(device, seed=0, exact=True)
        workload = ghz(6)
        base = session.evaluate(workload, session.run_baseline(workload))
        jig = session.evaluate(
            workload, session.run_jigsaw(workload).output_pmf
        )
        assert jig.pst > base.pst


class TestSessionContextManager:
    def test_enter_returns_session_and_exit_closes(self, device):
        with Session(device, seed=0, workers=2) as session:
            assert isinstance(session, Session)
            session.run(session.plan(ghz(6), scheme="jigsaw"))
            runner = session._runners[("jigsaw", True)]
            # The sharded runner backend materialised a pool during run.
            backend = runner._resolved_backend
            assert backend is not None and backend._pool is not None
        # __exit__ -> close(): every pool released.
        assert backend._pool is None

    def test_exit_closes_on_error_paths(self, device):
        backend = None
        with pytest.raises(ExperimentError):
            with Session(device, seed=0, workers=2) as session:
                session.run(session.plan(ghz(6), scheme="jigsaw"))
                backend = session._runners[("jigsaw", True)]._resolved_backend
                assert backend._pool is not None
                raise ExperimentError("boom")
        assert backend._pool is None

    def test_session_usable_after_close(self, device):
        with Session(device, seed=0) as session:
            first = session.run_scheme("baseline", ghz(6))
        # Pools re-materialise lazily; the session still works.
        again = session.run_scheme("baseline", ghz(6))
        assert first.as_dict() == again.as_dict()


class TestPayloadVersioning:
    def test_results_are_stamped(self, device):
        from repro.core import PAYLOAD_VERSION

        with Session(device, seed=0, total_trials=1024) as session:
            jig = session.run(session.plan(ghz(6), scheme="jigsaw"))
            jig_m = session.run(session.plan(ghz(6), scheme="jigsaw_m"))
        assert jig.to_dict()["payload_version"] == PAYLOAD_VERSION
        assert jig_m.to_dict()["payload_version"] == PAYLOAD_VERSION

    def test_pmf_payload_roundtrip_with_version(self, device):
        from repro.core import PMF

        with Session(device, seed=0, total_trials=1024) as session:
            pmf = session.run_scheme("baseline", ghz(6))
        payload = pmf.to_payload()
        payload["payload_version"] = 1
        assert PMF.from_payload(payload).as_dict() == pmf.as_dict()

    def test_pmf_payload_rejects_future_version(self):
        from repro.core import PMF
        from repro.exceptions import PayloadError

        payload = {"codes": [0], "probs": [1.0], "num_bits": 1,
                   "payload_version": 99}
        with pytest.raises(PayloadError, match="payload_version 99"):
            PMF.from_payload(payload)

    def test_check_payload_version_contract(self):
        from repro.core import check_payload_version
        from repro.exceptions import PayloadError

        assert check_payload_version({}) == 1  # missing -> legacy v1
        assert check_payload_version({"payload_version": 1}) == 1
        for bad in ({"payload_version": 0}, {"payload_version": "1"},
                    {"payload_version": True}):
            with pytest.raises(PayloadError):
                check_payload_version(bad)
