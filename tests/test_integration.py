"""Cross-module integration tests: the full pipeline on real device models.

These run the complete JigSaw flow (compile -> execute -> reconstruct ->
score) on the paper's device models with mid-sized workloads, asserting
the paper's headline qualitative claims.
"""

import pytest

from repro.core import JigSaw, JigSawConfig, JigSawM, JigSawMConfig
from repro.experiments import SchemeRunner
from repro.metrics import (
    fidelity,
    inference_strength,
    probability_of_successful_trial,
)
from repro.workloads import ghz, graycode, workload_by_name


@pytest.fixture(scope="module")
def runner(toronto):
    return SchemeRunner(toronto, seed=2, exact=True)


class TestHeadlineClaims:
    """The paper's main qualitative results, on the Toronto model."""

    def test_jigsaw_beats_baseline_on_ghz14(self, runner):
        workload = ghz(14)
        base = runner.evaluate(workload, runner.run_baseline(workload))
        jig = runner.evaluate(workload, runner.run_jigsaw(workload).output_pmf)
        assert jig.pst > 1.5 * base.pst
        assert jig.fidelity > base.fidelity
        assert jig.ist > base.ist

    def test_jigsawm_beats_jigsaw_on_ghz14(self, runner):
        workload = ghz(14)
        jig = runner.evaluate(workload, runner.run_jigsaw(workload).output_pmf)
        jig_m = runner.evaluate(
            workload, runner.run_jigsaw_m(workload).output_pmf
        )
        assert jig_m.pst >= jig.pst

    def test_recompilation_contributes(self, runner):
        """Fig. 11: recompiled JigSaw beats subsetting-only JigSaw."""
        workload = ghz(14)
        with_recomp = runner.evaluate(
            workload, runner.run_jigsaw(workload).output_pmf
        )
        without = runner.evaluate(
            workload, runner.run_jigsaw(workload, recompile=False).output_pmf
        )
        assert with_recomp.pst >= without.pst

    def test_edm_does_not_improve_pst(self, runner):
        """§6.2: EDM mainly helps IST; its PST stays near the baseline."""
        workload = ghz(14)
        base = runner.evaluate(workload, runner.run_baseline(workload))
        edm = runner.evaluate(workload, runner.run_edm(workload))
        assert edm.pst < 1.3 * base.pst

    def test_wide_measurement_benefits_most(self, runner):
        """Graycode-18 (18 measured bits) gains more than BV-6 (6 bits)."""
        wide = workload_by_name("Graycode-18")
        narrow = workload_by_name("BV-6")
        gains = {}
        for workload in (wide, narrow):
            base = runner.evaluate(workload, runner.run_baseline(workload))
            jig = runner.evaluate(
                workload, runner.run_jigsaw(workload).output_pmf
            )
            gains[workload.name] = jig.pst / base.pst
        assert gains["Graycode-18"] > gains["BV-6"]


class TestSampledPipeline:
    """The sampled (finite-trials) path, end to end."""

    def test_sampled_jigsaw_improves(self, toronto):
        workload = ghz(10)
        jigsaw = JigSaw(toronto, JigSawConfig(exact=False), seed=21)
        result = jigsaw.run(workload.circuit, total_trials=65_536)
        base_pst = probability_of_successful_trial(
            result.global_pmf, workload.correct_outcomes
        )
        out_pst = probability_of_successful_trial(
            result.output_pmf, workload.correct_outcomes
        )
        assert out_pst > base_pst

    def test_sampled_matches_exact_roughly(self, toronto):
        workload = ghz(10)
        exact = JigSaw(toronto, JigSawConfig(exact=True), seed=22)
        sampled = JigSaw(toronto, JigSawConfig(exact=False), seed=22)
        shared = exact.compile_global(workload.circuit)
        exact_out = exact.run(
            workload.circuit, 131_072, global_executable=shared
        ).output_pmf
        sampled_out = sampled.run(
            workload.circuit, 131_072, global_executable=shared
        ).output_pmf
        exact_pst = probability_of_successful_trial(
            exact_out, workload.correct_outcomes
        )
        sampled_pst = probability_of_successful_trial(
            sampled_out, workload.correct_outcomes
        )
        assert sampled_pst == pytest.approx(exact_pst, abs=0.08)

    def test_multilayer_sampled(self, toronto):
        workload = graycode(10)
        runner = JigSawM(toronto, JigSawMConfig(exact=False), seed=23)
        result = runner.run(workload.circuit, total_trials=65_536)
        base_pst = probability_of_successful_trial(
            result.global_pmf, workload.correct_outcomes
        )
        out_pst = probability_of_successful_trial(
            result.output_pmf, workload.correct_outcomes
        )
        assert out_pst > base_pst
