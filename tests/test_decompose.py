"""Tests for the native-basis decomposition pass."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.compiler import NATIVE_BASIS, decompose_to_native, zyz_angles
from repro.circuits.gates import Gate, gate_matrix, u3_matrix
from repro.exceptions import CompilationError
from repro.sim import StatevectorSimulator


def distributions_match(a: QuantumCircuit, b: QuantumCircuit) -> bool:
    sim = StatevectorSimulator()
    da = sim.ideal_distribution(a)
    db = sim.ideal_distribution(b)
    return all(
        np.isclose(da.get(k, 0.0), db.get(k, 0.0), atol=1e-9)
        for k in set(da) | set(db)
    )


def states_match(a: QuantumCircuit, b: QuantumCircuit) -> bool:
    """Statevectors equal up to a global phase."""
    sim = StatevectorSimulator()
    sa = sim.statevector(a)
    sb = sim.statevector(b)
    overlap = np.vdot(sa, sb)
    return np.isclose(abs(overlap), 1.0, atol=1e-9)


class TestZyzAngles:
    @pytest.mark.parametrize(
        "name", ["h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx"]
    )
    def test_named_gates_recovered(self, name):
        matrix = gate_matrix(name)
        theta, phi, lam = zyz_angles(matrix)
        rebuilt = u3_matrix(theta, phi, lam)
        overlap = abs(np.trace(rebuilt.conj().T @ matrix)) / 2.0
        assert overlap == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=-6, max_value=6),
        st.floats(min_value=-6, max_value=6),
        st.floats(min_value=-6, max_value=6),
    )
    def test_u3_round_trip(self, theta, phi, lam):
        matrix = u3_matrix(theta, phi, lam)
        rebuilt = u3_matrix(*zyz_angles(matrix))
        overlap = abs(np.trace(rebuilt.conj().T @ matrix)) / 2.0
        assert overlap == pytest.approx(1.0, abs=1e-8)

    def test_rejects_two_qubit_matrix(self):
        with pytest.raises(CompilationError):
            zyz_angles(np.eye(4))


class TestDecomposition:
    def test_output_is_native(self):
        qc = QuantumCircuit(3)
        qc.h(0).s(1).swap(0, 2).rzz(0.7, 1, 2).cz(0, 1).cp(0.3, 1, 2)
        qc.ccx(0, 1, 2)
        native = decompose_to_native(qc)
        for ins in native.gates():
            assert ins.gate.name in NATIVE_BASIS

    @pytest.mark.parametrize(
        "builder",
        [
            lambda qc: qc.swap(0, 1),
            lambda qc: qc.cz(0, 1),
            lambda qc: qc.rzz(0.9, 0, 1),
            lambda qc: qc.cp(1.3, 0, 1),
        ],
    )
    def test_two_qubit_rules_preserve_state(self, builder):
        qc = QuantumCircuit(2).h(0).rx(0.4, 1)
        builder(qc)
        assert states_match(qc, decompose_to_native(qc))

    def test_toffoli_preserves_distribution(self):
        qc = QuantumCircuit(3).x(0).x(1).ccx(0, 1, 2).measure_all()
        native = decompose_to_native(qc)
        assert distributions_match(qc, native)
        assert native.count_ops().get("ccx", 0) == 0

    def test_full_circuit_distribution(self, ghz4):
        qc = ghz4.copy()
        native = decompose_to_native(qc)
        assert distributions_match(qc, native)

    def test_measurements_and_barriers_kept(self):
        qc = QuantumCircuit(2).h(0).barrier().cx(0, 1).measure_all()
        native = decompose_to_native(qc)
        assert native.count_ops()["measure"] == 2
        assert native.count_ops()["barrier"] == 1

    def test_idempotent_on_native(self):
        qc = QuantumCircuit(2).u3(0.1, 0.2, 0.3, 0).cx(0, 1)
        once = decompose_to_native(qc)
        twice = decompose_to_native(once)
        assert [i.gate.name for i in once.gates()] == [
            i.gate.name for i in twice.gates()
        ]

    def test_swap_is_three_cnots(self):
        qc = QuantumCircuit(2).swap(0, 1)
        native = decompose_to_native(qc)
        assert native.count_ops() == {"cx": 3}

    def test_qaoa_workload_decomposes(self):
        from repro.workloads import qaoa_maxcut

        workload = qaoa_maxcut(5, depth=1)
        native = decompose_to_native(workload.circuit)
        assert distributions_match(workload.circuit, native)
