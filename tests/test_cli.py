"""End-to-end smoke tests for the ``repro`` command line."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "GHZ-4"])
        assert args.command == "run"
        assert args.device == "toronto"
        assert args.trials == 32_768
        assert not args.sampled

    def test_rejects_unknown_device(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--workload", "GHZ-4", "--device", "nonexistent"]
            )


class TestMain:
    def test_run_smoke(self, capsys):
        code = main(
            ["run", "--workload", "GHZ-4", "--trials", "2048", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "JigSaw on GHZ-4 / ibmq_toronto" in out
        assert "JigSaw output" in out
        assert "CPMs:" in out

    def test_run_with_workers(self, capsys):
        code = main(
            [
                "run", "--workload", "GHZ-4", "--trials", "2048",
                "--workers", "2",
            ]
        )
        assert code == 0
        assert "JigSaw output" in capsys.readouterr().out

    def test_run_with_exec_workers_matches_serial(self, capsys):
        # The sharded path is a pure fan-out: same seed, same report.
        argv = [
            "run", "--workload", "GHZ-4", "--trials", "2048",
            "--seed", "1", "--sampled",
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--exec-workers", "4"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_compare_smoke(self, capsys):
        code = main(
            ["compare", "--workload", "BV-3", "--trials", "2048", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        for scheme in ("baseline", "edm", "jigsaw", "jigsaw_m"):
            assert scheme in out
        assert "plan cache:" in out

    def test_devices_smoke(self, capsys):
        code = main(["devices"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("toronto", "paris", "manhattan", "sycamore"):
            assert name in out

    def test_scalability_smoke(self, capsys):
        code = main(["scalability"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 7" in out

    def test_unknown_workload_is_reported(self, capsys):
        code = main(["run", "--workload", "Nope-3"])
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err
