"""End-to-end smoke tests for the ``repro`` command line."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "GHZ-4"])
        assert args.command == "run"
        assert args.device == "toronto"
        assert args.trials == 32_768
        assert not args.sampled

    def test_rejects_unknown_device(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--workload", "GHZ-4", "--device", "nonexistent"]
            )


class TestMain:
    def test_run_smoke(self, capsys):
        code = main(
            ["run", "--workload", "GHZ-4", "--trials", "2048", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "JigSaw on GHZ-4 / ibmq_toronto" in out
        assert "JigSaw output" in out
        assert "CPMs:" in out

    def test_run_with_workers(self, capsys):
        code = main(
            [
                "run", "--workload", "GHZ-4", "--trials", "2048",
                "--workers", "2",
            ]
        )
        assert code == 0
        assert "JigSaw output" in capsys.readouterr().out

    def test_run_with_exec_workers_matches_serial(self, capsys):
        # The sharded path is a pure fan-out: same seed, same report.
        argv = [
            "run", "--workload", "GHZ-4", "--trials", "2048",
            "--seed", "1", "--sampled",
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--exec-workers", "4"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_compare_smoke(self, capsys):
        code = main(
            ["compare", "--workload", "BV-3", "--trials", "2048", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        for scheme in ("baseline", "edm", "jigsaw", "jigsaw_m"):
            assert scheme in out
        assert "plan cache:" in out

    def test_devices_smoke(self, capsys):
        code = main(["devices"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("toronto", "paris", "manhattan", "sycamore"):
            assert name in out

    def test_scalability_smoke(self, capsys):
        code = main(["scalability"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 7" in out

    def test_unknown_workload_is_reported(self, capsys):
        code = main(["run", "--workload", "Nope-3"])
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err


class TestServe:
    def _jobs_file(self, tmp_path):
        import json

        path = tmp_path / "jobs.json"
        path.write_text(
            json.dumps(
                [
                    {"tenant": "alice", "workload": "GHZ-4",
                     "total_trials": 1024, "seed": 0},
                    {"tenant": "bob", "workload": "GHZ-4",
                     "total_trials": 2048, "seed": 0},
                    {"tenant": "bob", "workload": "BV-4",
                     "scheme": "baseline", "total_trials": 1024},
                    {"tenant": "alice", "workload": "GHZ-4",
                     "total_trials": 1024, "seed": 0},
                ]
            )
        )
        return path

    def test_serve_smoke(self, tmp_path, capsys):
        code = main(["serve", "--jobs", str(self._jobs_file(tmp_path))])
        out = capsys.readouterr().out
        assert code == 0
        assert "Service run over" in out
        assert "executed" in out and "memoized" in out
        assert "channel evals" in out

    def test_serve_memoizes_across_invocations(self, tmp_path, capsys):
        jobs = str(self._jobs_file(tmp_path))
        store = str(tmp_path / "store.jsonl")
        assert main(["serve", "--jobs", jobs, "--store", store]) == 0
        first = capsys.readouterr().out
        assert "3 executed" in first
        assert main(["serve", "--jobs", jobs, "--store", store]) == 0
        second = capsys.readouterr().out
        assert "0 executed, 4 memoized" in second

    def test_serve_reports_rejections(self, tmp_path, capsys):
        import json

        path = tmp_path / "jobs.json"
        path.write_text(
            json.dumps(
                [
                    {"tenant": "greedy", "workload": "GHZ-4",
                     "total_trials": 1024, "seed": s}
                    for s in range(4)
                ]
            )
        )
        code = main(
            ["serve", "--jobs", str(path), "--capacity", "2",
             "--fair-share", "1.0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 rejected" in out and "queue full" in out

    def test_serve_rejects_bad_file(self, tmp_path, capsys):
        path = tmp_path / "jobs.json"
        path.write_text("[]")
        assert main(["serve", "--jobs", str(path)]) == 1
        assert "non-empty" in capsys.readouterr().err

    def test_serve_subprocess_hard_timeout(self, tmp_path):
        """The end-to-end smoke the CI workflow mirrors: drive the real
        process (submit -> drain/poll -> fetch) under a hard timeout."""
        import json
        import os
        import subprocess
        import sys

        jobs = tmp_path / "jobs.json"
        jobs.write_text(
            json.dumps(
                [{"tenant": "ci", "workload": "GHZ-4", "total_trials": 1024}]
            )
        )
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--jobs", str(jobs)],
            capture_output=True,
            text=True,
            timeout=120,  # the hard timeout: a hung service fails loudly
            env=env,
        )
        assert completed.returncode == 0, completed.stderr
        assert "done" in completed.stdout
