"""End-to-end smoke tests for the ``repro`` command line."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "GHZ-4"])
        assert args.command == "run"
        assert args.device == "toronto"
        assert args.trials == 32_768
        assert not args.sampled

    def test_rejects_unknown_device(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--workload", "GHZ-4", "--device", "nonexistent"]
            )


class TestMain:
    def test_run_smoke(self, capsys):
        code = main(
            ["run", "--workload", "GHZ-4", "--trials", "2048", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "JigSaw on GHZ-4 / ibmq_toronto" in out
        assert "JigSaw output" in out
        assert "CPMs:" in out

    def test_run_with_workers(self, capsys):
        code = main(
            [
                "run", "--workload", "GHZ-4", "--trials", "2048",
                "--workers", "2",
            ]
        )
        assert code == 0
        assert "JigSaw output" in capsys.readouterr().out

    def test_run_with_exec_workers_matches_serial(self, capsys):
        # The sharded path is a pure fan-out: same seed, same report.
        argv = [
            "run", "--workload", "GHZ-4", "--trials", "2048",
            "--seed", "1", "--sampled",
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--exec-workers", "4"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_compare_smoke(self, capsys):
        code = main(
            ["compare", "--workload", "BV-3", "--trials", "2048", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        for scheme in ("baseline", "edm", "jigsaw", "jigsaw_m"):
            assert scheme in out
        assert "plan cache:" in out

    def test_sweep_smoke(self, capsys):
        code = main(
            [
                "sweep", "--workload", "QAOA-4", "--trials", "2048",
                "--seed", "1", "--points", "[[0.3, 0.4], [0.5, 0.2]]",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "jigsaw sweep of QAOA-4 p1 / ibmq_toronto: 2 points" in out
        assert "compile-once:" in out
        assert "2 binds" in out

    def test_sweep_json_output(self, tmp_path, capsys):
        import json

        path = tmp_path / "sweep.json"
        code = main(
            [
                "sweep", "--workload", "QAOA-4", "--trials", "2048",
                "--points", "[[0.3, 0.4]]", "--json", str(path),
            ]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["scheme"] == "jigsaw"
        assert payload["num_iterations"] == 1
        assert payload["parameter_sets"] == [[0.3, 0.4]]
        assert len(payload["output_pmfs"]) == 1

    def test_sweep_points_from_file(self, tmp_path, capsys):
        points = tmp_path / "points.json"
        points.write_text("[[0.3, 0.4], [0.1, 0.2]]")
        code = main(
            [
                "sweep", "--workload", "QAOA-4", "--trials", "2048",
                "--points", f"@{points}",
            ]
        )
        assert code == 0
        assert "2 points" in capsys.readouterr().out

    def test_sweep_rejects_unparameterized_workload(self, capsys):
        code = main(
            ["sweep", "--workload", "GHZ-4", "--points", "[[0.1]]"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "no template circuit" in captured.err

    def test_devices_smoke(self, capsys):
        code = main(["devices"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("toronto", "paris", "manhattan", "sycamore"):
            assert name in out

    def test_scalability_smoke(self, capsys):
        code = main(["scalability"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 7" in out

    def test_unknown_workload_is_reported(self, capsys):
        code = main(["run", "--workload", "Nope-3"])
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err


class TestServe:
    def _jobs_file(self, tmp_path):
        import json

        path = tmp_path / "jobs.json"
        path.write_text(
            json.dumps(
                [
                    {"tenant": "alice", "workload": "GHZ-4",
                     "total_trials": 1024, "seed": 0},
                    {"tenant": "bob", "workload": "GHZ-4",
                     "total_trials": 2048, "seed": 0},
                    {"tenant": "bob", "workload": "BV-4",
                     "scheme": "baseline", "total_trials": 1024},
                    {"tenant": "alice", "workload": "GHZ-4",
                     "total_trials": 1024, "seed": 0},
                ]
            )
        )
        return path

    def test_serve_smoke(self, tmp_path, capsys):
        code = main(["serve", "--jobs", str(self._jobs_file(tmp_path))])
        out = capsys.readouterr().out
        assert code == 0
        assert "Service run over" in out
        assert "executed" in out and "memoized" in out
        assert "channel evals" in out

    def test_serve_memoizes_across_invocations(self, tmp_path, capsys):
        jobs = str(self._jobs_file(tmp_path))
        store = str(tmp_path / "store.jsonl")
        assert main(["serve", "--jobs", jobs, "--store", store]) == 0
        first = capsys.readouterr().out
        assert "3 executed" in first
        assert main(["serve", "--jobs", jobs, "--store", store]) == 0
        second = capsys.readouterr().out
        assert "0 executed, 4 memoized" in second

    def test_serve_reports_rejections(self, tmp_path, capsys):
        import json

        path = tmp_path / "jobs.json"
        path.write_text(
            json.dumps(
                [
                    {"tenant": "greedy", "workload": "GHZ-4",
                     "total_trials": 1024, "seed": s}
                    for s in range(4)
                ]
            )
        )
        code = main(
            ["serve", "--jobs", str(path), "--capacity", "2",
             "--fair-share", "1.0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 rejected" in out and "queue full" in out

    def test_serve_rejects_bad_file(self, tmp_path, capsys):
        path = tmp_path / "jobs.json"
        path.write_text("[]")
        assert main(["serve", "--jobs", str(path)]) == 1
        assert "non-empty" in capsys.readouterr().err

    def test_serve_subprocess_hard_timeout(self, tmp_path):
        """The end-to-end smoke the CI workflow mirrors: drive the real
        process (submit -> drain/poll -> fetch) under a hard timeout."""
        import json
        import os
        import subprocess
        import sys

        jobs = tmp_path / "jobs.json"
        jobs.write_text(
            json.dumps(
                [{"tenant": "ci", "workload": "GHZ-4", "total_trials": 1024}]
            )
        )
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--jobs", str(jobs)],
            capture_output=True,
            text=True,
            timeout=120,  # the hard timeout: a hung service fails loudly
            env=env,
        )
        assert completed.returncode == 0, completed.stderr
        assert "done" in completed.stdout


class TestServeTier:
    def _jobs_file(self, tmp_path):
        import json

        path = tmp_path / "jobs.json"
        path.write_text(
            json.dumps(
                [
                    {"tenant": "alice", "workload": "GHZ-4",
                     "total_trials": 1024, "seed": 0},
                    {"tenant": "bob", "workload": "BV-4",
                     "scheme": "baseline", "total_trials": 1024},
                    {"tenant": "carol", "workload": "GHZ-4",
                     "scheme": "edm", "total_trials": 1024, "seed": 1},
                ]
            )
        )
        return path

    def test_tier_serve_matches_single_drain(self, tmp_path, capsys):
        """--workers N serves the same stream with identical statuses."""
        jobs = str(self._jobs_file(tmp_path))
        assert main(["serve", "--jobs", jobs]) == 0
        single = capsys.readouterr().out
        assert main(["serve", "--jobs", jobs, "--workers", "2"]) == 0
        tier = capsys.readouterr().out
        assert "tier:    2 workers" in tier
        assert single.count("done") == tier.count("done") == 3

    def test_tier_serve_stats_json(self, tmp_path, capsys):
        import json

        stats_path = tmp_path / "stats.json"
        code = main(
            ["serve", "--jobs", str(self._jobs_file(tmp_path)),
             "--workers", "2", "--stats-json", str(stats_path)]
        )
        assert code == 0
        stats = json.loads(stats_path.read_text())
        assert stats["jobs"]["executed"] == 3
        assert len(stats["workers"]) == 2
        assert stats["latency"]["batches"] >= 1
        assert "queue_wait" in stats["latency"]["stages"]

    def test_tier_serve_with_segmented_store(self, tmp_path, capsys):
        jobs = str(self._jobs_file(tmp_path))
        store_dir = str(tmp_path / "segments")
        assert main(
            ["serve", "--jobs", jobs, "--workers", "2",
             "--store-dir", store_dir]
        ) == 0
        capsys.readouterr()
        # Restart replays the journal: the whole stream memoizes.
        assert main(["serve", "--jobs", jobs, "--store-dir", store_dir]) == 0
        assert "0 executed, 3 memoized" in capsys.readouterr().out

    def test_store_and_store_dir_exclusive(self, tmp_path, capsys):
        code = main(
            ["serve", "--jobs", str(self._jobs_file(tmp_path)),
             "--store", str(tmp_path / "a.jsonl"),
             "--store-dir", str(tmp_path / "b")]
        )
        assert code == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_tier_serve_subprocess_hard_timeout(self, tmp_path):
        """CI's tier e2e smoke: submit -> watch -> fetch through a real
        multi-worker process under a hard timeout."""
        import json
        import os
        import subprocess
        import sys

        jobs = tmp_path / "jobs.json"
        jobs.write_text(
            json.dumps(
                [
                    {"tenant": "ci", "workload": "GHZ-4",
                     "total_trials": 1024, "seed": s}
                    for s in range(3)
                ]
            )
        )
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--jobs", str(jobs),
             "--workers", "2", "--stats-json", "-"],
            capture_output=True,
            text=True,
            timeout=120,  # hard timeout: a hung tier fails loudly
            env=env,
        )
        assert completed.returncode == 0, completed.stderr
        assert "done" in completed.stdout
        assert '"placement"' in completed.stdout  # the stats snapshot


class TestTraceCLI:
    def _jobs_file(self, tmp_path):
        import json

        path = tmp_path / "jobs.json"
        path.write_text(
            json.dumps(
                [
                    {"tenant": "alice", "workload": "GHZ-4",
                     "total_trials": 1024, "seed": 0},
                    {"tenant": "bob", "workload": "GHZ-4",
                     "total_trials": 1024, "seed": 1},
                ]
            )
        )
        return path

    def _serve_traced(self, tmp_path, capsys, extra=()):
        trace_dir = tmp_path / "traces"
        stats_path = tmp_path / "stats.json"
        code = main(
            ["serve", "--jobs", str(self._jobs_file(tmp_path)),
             "--workers", "2", "--trace", str(trace_dir),
             "--stats-json", str(stats_path), *extra]
        )
        assert code == 0
        capsys.readouterr()
        return trace_dir, stats_path

    def _job_ids(self, trace_dir):
        # Job ids are process-global (job-N keeps counting across serve
        # invocations), so tests discover them from the written files.
        return sorted(
            p.name[: -len(".trace.json")] for p in trace_dir.iterdir()
        )

    def test_serve_trace_writes_chrome_trace_files(self, tmp_path, capsys):
        import json

        trace_dir, _ = self._serve_traced(tmp_path, capsys)
        job_ids = self._job_ids(trace_dir)
        assert len(job_ids) == 2
        for job_id in job_ids:
            document = json.loads(
                (trace_dir / f"{job_id}.trace.json").read_text()
            )
            events = [
                e for e in document["traceEvents"] if e["ph"] == "X"
            ]
            assert {e["name"] for e in events} >= {
                "job", "admission", "queue_wait", "prepare",
                "execute", "reconstruct", "finish",
            }
            assert document["status"] == "done"
            assert document["job_id"] == job_id

    def test_memoized_job_trace_is_short(self, tmp_path, capsys):
        import json

        store = str(tmp_path / "store.jsonl")
        self._serve_traced(tmp_path, capsys, extra=("--store", store))
        # Restart against the same store: every job memoizes, so the new
        # traces stop at admission.
        trace_dir = tmp_path / "traces2"
        assert main(
            ["serve", "--jobs", str(self._jobs_file(tmp_path)),
             "--workers", "2", "--store", store,
             "--trace", str(trace_dir)]
        ) == 0
        capsys.readouterr()
        job_ids = self._job_ids(trace_dir)
        assert len(job_ids) == 2
        for job_id in job_ids:
            document = json.loads(
                (trace_dir / f"{job_id}.trace.json").read_text()
            )
            names = {row["name"] for row in document["spans"]}
            assert "admission" in names
            assert "execute" not in names
            assert document["source"] == "memoized"

    def test_trace_command_renders_tree(self, tmp_path, capsys):
        trace_dir, _ = self._serve_traced(tmp_path, capsys)
        job_id = self._job_ids(trace_dir)[0]
        code = main(["trace", job_id, "--dir", str(trace_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert job_id in out
        for name in ("admission", "queue_wait", "prepare", "execute",
                     "reconstruct", "finish"):
            assert name in out

    def test_trace_command_json_round_trip(self, tmp_path, capsys):
        import json

        trace_dir, _ = self._serve_traced(tmp_path, capsys)
        job_id = self._job_ids(trace_dir)[0]
        code = main(["trace", job_id, "--dir", str(trace_dir), "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["job_id"] == job_id
        assert document["spans"]

    def test_trace_command_missing_file(self, tmp_path, capsys):
        code = main(["trace", "job-404", "--dir", str(tmp_path)])
        assert code == 1
        assert "job-404" in capsys.readouterr().err

    def test_trace_requires_workers(self, tmp_path, capsys):
        code = main(
            ["serve", "--jobs", str(self._jobs_file(tmp_path)),
             "--trace", str(tmp_path / "traces")]
        )
        assert code == 1
        assert "--workers" in capsys.readouterr().err

    def test_stats_json_carries_telemetry(self, tmp_path, capsys):
        import json

        _, stats_path = self._serve_traced(tmp_path, capsys)
        stats = json.loads(stats_path.read_text())
        counters = stats["telemetry"]["counters"]
        assert counters["tier.submitted"] == 2
        assert counters["tier.executed"] == 2
        assert counters["tier.memoized"] == 0
        assert stats["registry"]["counters"] == counters
        quantiles = stats["telemetry"]["histograms"]["tier.job_total"][
            "quantiles"
        ]
        assert set(quantiles) == {"p50", "p95", "p99"}

    def test_stats_command_renders_summary(self, tmp_path, capsys):
        _, stats_path = self._serve_traced(tmp_path, capsys)
        code = main(["stats", str(stats_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "tier.submitted" in out
        assert "p50" in out

    def test_stats_command_prometheus(self, tmp_path, capsys):
        _, stats_path = self._serve_traced(tmp_path, capsys)
        code = main(["stats", str(stats_path), "--prometheus"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_tier_submitted counter" in out
        assert 'repro_tier_job_total_bucket{le="+Inf"} 2' in out

    def test_single_drain_stats_json_telemetry(self, tmp_path, capsys):
        import json

        stats_path = tmp_path / "stats.json"
        code = main(
            ["serve", "--jobs", str(self._jobs_file(tmp_path)),
             "--stats-json", str(stats_path)]
        )
        assert code == 0
        capsys.readouterr()
        stats = json.loads(stats_path.read_text())
        counters = stats["telemetry"]["counters"]
        assert counters["service.submitted"] == 2
        assert counters["service.executed"] == 2


class TestStoreCompact:
    def test_migrates_legacy_journal(self, tmp_path, capsys):
        from repro.service import ResultStore
        from repro.service.tier import SegmentedResultStore

        legacy = tmp_path / "legacy.jsonl"
        store = ResultStore(path=str(legacy))
        for i in range(3):
            store.put(f"fp{i}", {"scheme": "jigsaw", "value": i})
        into = str(tmp_path / "segments")
        assert main(
            ["store", "compact", "--journal", str(legacy), "--into", into]
        ) == 0
        assert "migrated 3 records" in capsys.readouterr().out
        migrated = SegmentedResultStore(root=into)
        assert all(migrated.get(f"fp{i}")["value"] == i for i in range(3))

    def test_compacts_segmented_store_in_place(self, tmp_path, capsys):
        import os

        from repro.service.tier import SegmentedResultStore

        root = str(tmp_path / "segments")
        store = SegmentedResultStore(root=root, segment_bytes=80)
        for i in range(6):
            store.put(f"fp{i}", {"scheme": "jigsaw", "value": i}, shard="devA")
        assert len(os.listdir(os.path.join(root, "devA"))) > 1
        assert main(["store", "compact", "--dir", root]) == 0
        assert "compacted" in capsys.readouterr().out
        assert len(os.listdir(os.path.join(root, "devA"))) == 1

    def test_requires_arguments(self, capsys):
        assert main(["store", "compact"]) == 1
        assert "needs" in capsys.readouterr().err
        assert main(["store", "compact", "--journal", "x.jsonl"]) == 1
        assert "--into" in capsys.readouterr().err
