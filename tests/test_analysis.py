"""Tests for the analysis package: diagnostics and adaptive budgeting."""

import pytest

from repro.analysis import (
    marginal_quality_report,
    reconstruction_trace,
    support_statistics,
    tune_trial_split,
)
from repro.core import JigSaw, JigSawConfig, PMF, Marginal
from repro.exceptions import ReconstructionError, ReproError
from repro.workloads import ghz
from tests.conftest import make_varied_line_device


@pytest.fixture(scope="module")
def jigsaw_result():
    device = make_varied_line_device(num_qubits=8)
    workload = ghz(6)
    runner = JigSaw(device, JigSawConfig(exact=True), seed=30)
    return workload, runner.run(workload.circuit, total_trials=32_768)


class TestMarginalQuality:
    def test_report_covers_every_cpm(self, jigsaw_result):
        workload, result = jigsaw_result
        report = marginal_quality_report(result, workload.ideal_distribution())
        assert len(report) == len(result.marginals)

    def test_cpm_marginals_beat_global_derived(self, jigsaw_result):
        """The paper's §4.2 premise, quantified."""
        workload, result = jigsaw_result
        report = marginal_quality_report(result, workload.ideal_distribution())
        wins = sum(1 for entry in report if entry.cpm_wins)
        assert wins >= len(report) - 1  # allow one tie/loss from routing luck

    def test_distances_in_range(self, jigsaw_result):
        workload, result = jigsaw_result
        for entry in marginal_quality_report(
            result, workload.ideal_distribution()
        ):
            assert 0.0 <= entry.tvd_cpm_vs_ideal <= 1.0
            assert 0.0 <= entry.tvd_global_vs_ideal <= 1.0


class TestReconstructionTrace:
    def test_distances_shrink(self, jigsaw_result):
        _, result = jigsaw_result
        trace = reconstruction_trace(
            result.global_pmf, result.marginals, max_rounds=8
        )
        assert len(trace) >= 2
        assert trace[-1] < trace[0]

    def test_invalid_rounds(self):
        with pytest.raises(ReproError):
            reconstruction_trace(PMF({"0": 1.0}), [], max_rounds=0)

    def test_stable_prior_converges_immediately(self):
        prior = PMF({"00": 0.25, "01": 0.25, "10": 0.25, "11": 0.25})
        marginal = Marginal((0,), PMF({"0": 0.5, "1": 0.5}))
        trace = reconstruction_trace(prior, [marginal], max_rounds=4)
        assert trace[0] < 1e-9


class TestSupportStatistics:
    def test_basic_fields(self):
        stats = support_statistics({"00": 0.5, "11": 0.5})
        assert stats["support"] == 2
        assert stats["max_outcomes"] == 4
        assert stats["occupancy"] == pytest.approx(0.5)

    def test_epsilon_with_trials(self):
        stats = support_statistics({"0": 0.7, "1": 0.3}, trials=100)
        assert stats["epsilon"] == pytest.approx(0.02)

    def test_invalid_inputs(self):
        with pytest.raises(ReproError):
            support_statistics({})
        with pytest.raises(ReproError):
            support_statistics({"0": 1.0}, trials=0)


class TestAdaptiveSplit:
    def test_saturated_budget_keeps_even_split(self):
        split = tune_trial_split(1_000_000, [2], [10])
        assert split.saturated
        assert split.global_fraction == pytest.approx(0.5)

    def test_constrained_budget_shrinks_subset_mode(self):
        # 10 size-2 CPMs need ~150*4 trials each = ~6000 total; with a
        # budget of 20000 the even split (1000/CPM) is enough, so push
        # lower: 8000 total -> even split gives 400/CPM < 600 needed.
        split = tune_trial_split(8_000, [2], [10])
        assert not split.saturated
        assert split.trials_per_cpm >= 590
        assert split.global_trials + split.trials_per_cpm * 10 == 8_000

    def test_global_floor_respected(self):
        split = tune_trial_split(
            4_000, [5], [10], min_global_fraction=0.25
        )
        assert split.global_fraction >= 0.25

    def test_validation(self):
        with pytest.raises(ReconstructionError):
            tune_trial_split(100, [2, 3], [1])
        with pytest.raises(ReconstructionError):
            tune_trial_split(100, [2], [0])
        with pytest.raises(ReconstructionError):
            tune_trial_split(10, [2], [10])
        with pytest.raises(ReconstructionError):
            tune_trial_split(10_000, [2], [4], min_global_fraction=1.5)


class TestDrawAndCli:
    def test_draw_renders_all_rows(self, ghz4):
        from repro.circuits import draw

        art = draw(ghz4)
        lines = art.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("q0:")
        assert "[h]" in art
        assert "M3" in art

    def test_draw_swap_and_barrier(self):
        from repro.circuits import QuantumCircuit, draw

        qc = QuantumCircuit(2).swap(0, 1).barrier().rx(0.5, 0)
        art = draw(qc)
        assert "x" in art
        assert "|" in art

    def test_cli_devices(self, capsys):
        from repro.cli import main

        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "toronto" in out

    def test_cli_scalability(self, capsys):
        from repro.cli import main

        assert main(["scalability"]) == 0
        assert "Table 7" in capsys.readouterr().out

    def test_cli_run(self, capsys):
        from repro.cli import main

        assert main(
            ["run", "--workload", "GHZ-6", "--device", "toronto",
             "--trials", "8192"]
        ) == 0
        out = capsys.readouterr().out
        assert "JigSaw output" in out

    def test_cli_compare(self, capsys):
        from repro.cli import main

        assert main(
            ["compare", "--workload", "BV-4", "--device", "paris",
             "--trials", "8192"]
        ) == 0
        out = capsys.readouterr().out
        assert "jigsaw_m" in out

    def test_cli_unknown_workload(self, capsys):
        from repro.cli import main

        assert main(["run", "--workload", "Nope-3"]) == 1
