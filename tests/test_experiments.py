"""Tests for the experiments layer: scheme runner, sweeps, rendering."""

import math

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    SCHEME_NAMES,
    SchemeRunner,
    figure3_spatial_variation,
    format_table,
    geometric_mean,
    run_main_results,
    table1_measurement_stats,
)
from repro.experiments.main_results import (
    MainResultRow,
    figure8_rows,
    figure8_text,
    figure11_rows,
    relative_stats_table,
    table3_text,
    table4_text,
)
from repro.workloads import bv, ghz, qaoa_maxcut
from tests.conftest import make_varied_line_device


@pytest.fixture(scope="module")
def device():
    return make_varied_line_device(num_qubits=8)


@pytest.fixture(scope="module")
def runner(device):
    return SchemeRunner(device, seed=0, exact=True)


class TestSchemeRunner:
    def test_baseline_pmf_normalised(self, runner):
        pmf = runner.run_baseline(ghz(4))
        assert sum(pmf.values()) == pytest.approx(1.0)

    def test_global_executable_cached(self, runner):
        workload = ghz(4)
        first = runner.global_executable(workload)
        second = runner.global_executable(workload)
        assert first is second

    def test_all_schemes_dispatch(self, runner):
        workload = ghz(4)
        for scheme in SCHEME_NAMES:
            pmf = runner.run_scheme(scheme, workload)
            assert pmf.num_bits == 4

    def test_unknown_scheme(self, runner):
        with pytest.raises(ExperimentError):
            runner.run_scheme("magic", ghz(4))

    def test_jigsaw_beats_baseline(self, runner):
        workload = ghz(6)
        base = runner.evaluate(workload, runner.run_baseline(workload))
        jig = runner.evaluate(
            workload, runner.run_jigsaw(workload).output_pmf
        )
        assert jig.pst > base.pst
        assert jig.fidelity > base.fidelity

    def test_metrics_fields(self, runner):
        workload = qaoa_maxcut(4, depth=1)
        metrics = runner.evaluate(workload, runner.run_baseline(workload))
        assert 0.0 <= metrics.pst <= 1.0
        assert metrics.ist >= 0.0
        assert 0.0 <= metrics.fidelity <= 1.0
        assert metrics.arg is not None

    def test_non_qaoa_has_no_arg(self, runner):
        workload = ghz(4)
        metrics = runner.evaluate(workload, runner.run_baseline(workload))
        assert metrics.arg is None

    def test_deterministic_across_runners(self, device):
        a = SchemeRunner(device, seed=3, exact=True)
        b = SchemeRunner(device, seed=3, exact=True)
        workload = ghz(4)
        pa = a.run_jigsaw(workload).output_pmf
        pb = b.run_jigsaw(workload).output_pmf
        assert pa.as_dict() == pytest.approx(pb.as_dict())

    def test_sampled_mode(self, device):
        runner = SchemeRunner(device, seed=1, exact=False, total_trials=8_192)
        pmf = runner.run_baseline(ghz(4))
        assert sum(pmf.values()) == pytest.approx(1.0)

    def test_mbm_width_guard(self, device):
        runner = SchemeRunner(device, seed=1, exact=True)
        # 8 bits is fine; the guard rejects beyond MAX_MBM_QUBITS which we
        # cannot build on this device, so just check dispatch works.
        pmf = runner.run_mbm(bv(4))
        assert pmf.num_bits == 4


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_ignores_nonpositive(self):
        with pytest.warns(RuntimeWarning, match="dropped 2"):
            assert geometric_mean([2.0, 0.0, math.inf]) == pytest.approx(2.0)

    def test_all_positive_warns_nothing(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            geometric_mean([1.0, 2.0, 4.0])

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            geometric_mean([0.0])


class TestMainResults:
    @pytest.fixture(scope="class")
    def rows(self, device):
        return run_main_results(
            devices=[device],
            workloads=[ghz(4), bv(4)],
            seed=0,
            exact=True,
        )

    def test_row_per_pair(self, rows):
        assert len(rows) == 2

    def test_jigsaw_improves_on_average(self, rows):
        mean_gain = geometric_mean([r.relative_pst("jigsaw") for r in rows])
        assert mean_gain > 1.0

    def test_jigsawm_at_least_jigsaw(self, rows):
        for row in rows:
            assert row.relative_pst("jigsaw_m") >= 0.9 * row.relative_pst("jigsaw")

    def test_figure8_rows_include_gmean(self, rows):
        table = figure8_rows(rows)
        assert any(cells[1] == "GMean" for cells in table)

    def test_figure8_text_renders(self, rows):
        text = figure8_text(rows)
        assert "Figure 8" in text
        assert "JigSaw-M" in text

    def test_tables_render(self, rows):
        assert "Table 3" in table3_text(rows)
        assert "Table 4" in table4_text(rows)

    def test_relative_stats_table_shape(self, rows):
        table = relative_stats_table(rows, MainResultRow.relative_ist)
        assert len(table) == 1  # one device
        assert len(table[0]) == 1 + 3 * 3  # device + 3 stats x 3 schemes

    def test_figure11_ordering(self, rows):
        table = figure11_rows(rows)
        device_row = table[0]
        # JigSaw with recompilation should not trail the no-recompile run
        # by more than noise.
        assert device_row[3] >= 0.9 * device_row[2]


class TestCharacterization:
    def test_table1_shape(self):
        stats = table1_measurement_stats()
        assert set(stats) == {"isolated", "simultaneous"}
        assert stats["simultaneous"]["average"] > stats["isolated"]["average"]

    def test_figure3_stats(self, toronto):
        result = figure3_spatial_variation(toronto)
        assert result["mean_percent"] == pytest.approx(4.70, abs=0.2)
        buckets = set(result["percentile_bucket_by_qubit"].values())
        assert buckets == {"<25", "25-50", "50-75", ">75"}


class TestRender:
    def test_basic_table(self):
        text = format_table(["A", "B"], [[1, 2.5], ["x", None]])
        assert "A" in text and "B" in text
        assert "2.500" in text
        assert "-" in text

    def test_title_underlined(self):
        text = format_table(["A"], [[1]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert set(lines[1]) == {"="}

    def test_float_format(self):
        text = format_table(["A"], [[1.23456]], float_format="{:.1f}")
        assert "1.2" in text
