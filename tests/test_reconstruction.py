"""Tests for the Bayesian Reconstruction algorithm (paper Algorithm 1).

Includes a slow dictionary-based reference implementation that mirrors the
paper's pseudocode line by line; the vectorised production code must agree
with it on random inputs.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PMF,
    Marginal,
    bayesian_reconstruction,
    bayesian_reconstruction_round,
    bayesian_update,
    hellinger_distance,
)
from repro.exceptions import ReconstructionError
from repro.utils.bits import extract_bits


# ---------------------------------------------------------------------------
# Reference implementation (paper pseudocode, dict-based)
# ---------------------------------------------------------------------------


def reference_bayesian_update(prior: PMF, marginal: Marginal) -> PMF:
    posterior = dict(prior.as_dict())
    groups = {}
    mass = {}
    for key, value in prior.items():
        projection = extract_bits(key, marginal.qubits)
        groups.setdefault(projection, []).append(key)
        mass[projection] = mass.get(projection, 0.0) + value
    for projection, pry in marginal.pmf.items():
        candidates = groups.get(projection)
        if not candidates or mass[projection] <= 0:
            continue
        pry = min(pry, 1.0 - 1e-12)
        odds = pry / (1.0 - pry)
        for key in candidates:
            posterior[key] = (prior[key] / mass[projection]) * odds
    return PMF(posterior, normalize=True)


def reference_round(prior: PMF, marginals) -> PMF:
    accumulator = dict(prior.as_dict())
    for marginal in marginals:
        posterior = reference_bayesian_update(prior, marginal)
        for key, value in posterior.items():
            accumulator[key] = accumulator.get(key, 0.0) + value
    return PMF(accumulator, normalize=True)


# ---------------------------------------------------------------------------
# The paper's Figure 6 worked example
# ---------------------------------------------------------------------------

FIG6_GLOBAL = {
    "000": 0.10, "001": 0.10, "010": 0.15, "011": 0.15,
    "100": 0.10, "101": 0.05, "110": 0.15, "111": 0.20,
}
FIG6_MARGINAL = {"00": 0.1, "01": 0.1, "10": 0.2, "11": 0.6}
# Raw (unnormalised) posterior from the figure: C * pry / (1 - pry).
FIG6_RAW_POSTERIOR = {
    "000": 0.0556, "001": 0.0741, "010": 0.1250, "011": 0.6429,
    "100": 0.0556, "101": 0.0370, "110": 0.1250, "111": 0.8571,
}


class TestFigure6:
    def test_update_matches_paper_numbers(self):
        prior = PMF(FIG6_GLOBAL)
        marginal = Marginal((0, 1), PMF(FIG6_MARGINAL))
        posterior = bayesian_update(prior, marginal)
        total = sum(FIG6_RAW_POSTERIOR.values())
        for key, raw in FIG6_RAW_POSTERIOR.items():
            assert posterior[key] == pytest.approx(raw / total, abs=2e-3)

    def test_correct_answer_amplified(self):
        """Fig. 6: the probability of 111 increases substantially."""
        prior = PMF(FIG6_GLOBAL)
        marginal = Marginal((0, 1), PMF(FIG6_MARGINAL))
        posterior = bayesian_update(prior, marginal)
        assert posterior["111"] > 2.0 * prior["111"]

    def test_reference_agrees_on_fig6(self):
        prior = PMF(FIG6_GLOBAL)
        marginal = Marginal((0, 1), PMF(FIG6_MARGINAL))
        fast = bayesian_update(prior, marginal)
        slow = reference_bayesian_update(prior, marginal)
        for key in FIG6_GLOBAL:
            assert fast[key] == pytest.approx(slow[key], abs=1e-12)


# ---------------------------------------------------------------------------
# Properties of a single update
# ---------------------------------------------------------------------------


class TestBayesianUpdate:
    def test_posterior_normalised(self):
        prior = PMF(FIG6_GLOBAL)
        marginal = Marginal((1, 2), PMF({"00": 0.4, "11": 0.6}))
        posterior = bayesian_update(prior, marginal)
        assert sum(posterior.values()) == pytest.approx(1.0)

    def test_unseen_projection_keeps_prior_value(self):
        """Entries whose projection is absent from the marginal keep P[x]."""
        prior = PMF({"00": 0.5, "01": 0.25, "11": 0.25})
        marginal = Marginal((0,), PMF({"1": 1.0}))
        posterior = bayesian_update(prior, marginal)
        # "00" projects to "0", unseen in the marginal: raw value stays 0.5
        # while "01"/"11" get odds-scaled; after normalisation "00" shrinks
        # but remains strictly positive.
        assert posterior["00"] > 0.0

    def test_marginal_probability_one_is_clipped(self):
        prior = PMF({"00": 0.5, "01": 0.5})
        marginal = Marginal((0,), PMF({"1": 1.0}))
        posterior = bayesian_update(prior, marginal)
        assert math.isfinite(posterior["01"])
        assert posterior["01"] > 0.99

    def test_uniform_marginal_over_balanced_prior_is_neutral(self):
        prior = PMF({"00": 0.25, "01": 0.25, "10": 0.25, "11": 0.25})
        marginal = Marginal((0,), PMF({"0": 0.5, "1": 0.5}))
        posterior = bayesian_update(prior, marginal)
        for key in prior:
            assert posterior[key] == pytest.approx(0.25)

    def test_out_of_range_marginal_rejected(self):
        prior = PMF({"00": 1.0})
        marginal = Marginal((5,), PMF({"0": 0.5, "1": 0.5}))
        with pytest.raises(ReconstructionError):
            bayesian_update(prior, marginal)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=1.0),
            min_size=8,
            max_size=8,
        ),
        st.lists(
            st.floats(min_value=0.001, max_value=1.0),
            min_size=4,
            max_size=4,
        ),
        st.sampled_from([(0, 1), (1, 2), (0, 2)]),
    )
    def test_vectorised_matches_reference(self, prior_raw, marg_raw, qubits):
        prior = PMF(
            {format(i, "03b"): p for i, p in enumerate(prior_raw)}
        )
        marginal = Marginal(
            qubits, PMF({format(i, "02b"): p for i, p in enumerate(marg_raw)})
        )
        fast = bayesian_update(prior, marginal)
        slow = reference_bayesian_update(prior, marginal)
        for key in prior:
            assert fast.prob(key) == pytest.approx(slow.prob(key), abs=1e-10)


# ---------------------------------------------------------------------------
# Full reconstruction
# ---------------------------------------------------------------------------


def exact_marginals_of(pmf: PMF, subsets):
    return [Marginal(subset, pmf.marginal(subset)) for subset in subsets]


class TestReconstruction:
    def test_round_matches_reference(self):
        prior = PMF(FIG6_GLOBAL)
        marginals = [
            Marginal((0, 1), PMF(FIG6_MARGINAL)),
            Marginal((1, 2), PMF({"00": 0.2, "01": 0.1, "10": 0.1, "11": 0.6})),
        ]
        fast = bayesian_reconstruction_round(prior, marginals)
        slow = reference_round(prior, marginals)
        for key in FIG6_GLOBAL:
            assert fast[key] == pytest.approx(slow[key], abs=1e-12)

    def test_marginal_order_does_not_matter(self):
        """§4.3: updates are computed from the same prior, then summed."""
        prior = PMF(FIG6_GLOBAL)
        m1 = Marginal((0, 1), PMF(FIG6_MARGINAL))
        m2 = Marginal((1, 2), PMF({"00": 0.3, "11": 0.7}))
        forward = bayesian_reconstruction(prior, [m1, m2])
        backward = bayesian_reconstruction(prior, [m2, m1])
        for key in FIG6_GLOBAL:
            assert forward[key] == pytest.approx(backward[key], abs=1e-12)

    def test_sharp_marginals_amplify_truth(self):
        """Noisy uniform-ish prior + clean GHZ marginals -> GHZ-like output."""
        noisy = {format(i, "04b"): 0.04 for i in range(16)}
        noisy["0000"] = 0.2
        noisy["1111"] = 0.2
        prior = PMF(noisy)
        subsets = [(0, 1), (1, 2), (2, 3), (0, 3)]
        marginals = [
            Marginal(s, PMF({"00": 0.5, "11": 0.5})) for s in subsets
        ]
        output = bayesian_reconstruction(prior, marginals)
        correct_mass = output["0000"] + output["1111"]
        prior_mass = prior["0000"] + prior["1111"]
        assert correct_mass > 1.5 * prior_mass

    def test_exact_marginals_preserve_correct_distribution(self):
        """Reconstruction with marginals derived from the prior is stable."""
        prior = PMF({"000": 0.5, "111": 0.5})
        marginals = exact_marginals_of(prior, [(0, 1), (1, 2)])
        output = bayesian_reconstruction(prior, marginals)
        assert output["000"] == pytest.approx(0.5, abs=1e-6)
        assert output["111"] == pytest.approx(0.5, abs=1e-6)

    def test_converges_within_max_rounds(self):
        prior = PMF(FIG6_GLOBAL)
        marginal = Marginal((0, 1), PMF(FIG6_MARGINAL))
        out_few = bayesian_reconstruction(prior, [marginal], max_rounds=32)
        out_more = bayesian_reconstruction(prior, [marginal], max_rounds=64)
        assert hellinger_distance(out_few, out_more) < 1e-3

    def test_empty_marginals_rejected(self):
        with pytest.raises(ReconstructionError):
            bayesian_reconstruction(PMF({"0": 1.0}), [])

    def test_invalid_tolerance(self):
        prior = PMF({"0": 1.0})
        marginal = Marginal((0,), PMF({"0": 1.0}))
        with pytest.raises(ReconstructionError):
            bayesian_reconstruction(prior, [marginal], tolerance=-1.0)

    def test_invalid_rounds(self):
        prior = PMF({"0": 1.0})
        marginal = Marginal((0,), PMF({"0": 1.0}))
        with pytest.raises(ReconstructionError):
            bayesian_reconstruction(prior, [marginal], max_rounds=0)

    def test_support_never_grows(self):
        """§7.1: only outcomes observed in the global PMF are stored."""
        prior = PMF({"000": 0.6, "011": 0.4})
        marginal = Marginal((0, 1), PMF({"00": 0.25, "01": 0.25, "10": 0.25, "11": 0.25}))
        output = bayesian_reconstruction(prior, [marginal])
        assert set(output) <= {"000", "011"}


class TestHellinger:
    def test_identical_distributions(self):
        pmf = PMF({"0": 0.3, "1": 0.7})
        assert hellinger_distance(pmf, pmf) == pytest.approx(0.0)

    def test_disjoint_distributions(self):
        a = PMF({"00": 1.0})
        b = PMF({"11": 1.0})
        assert hellinger_distance(a, b) == pytest.approx(1.0)

    def test_symmetry(self):
        a = PMF({"0": 0.2, "1": 0.8})
        b = PMF({"0": 0.6, "1": 0.4})
        assert hellinger_distance(a, b) == pytest.approx(
            hellinger_distance(b, a)
        )

    def test_width_mismatch_rejected(self):
        with pytest.raises(ReconstructionError):
            hellinger_distance(PMF({"0": 1.0}), PMF({"00": 1.0}))
