"""The multi-tenant job service: determinism, admission, memoization.

The load-bearing claim (ISSUE acceptance criteria): for fixed seeds, a
result fetched from :class:`MitigationService` is **bit-for-bit** equal
to a solo ``Session.run`` of the same spec — for every scheme, across
arrival orders, batch compositions, and execution worker counts.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.devices import ibmq_toronto
from repro.exceptions import AdmissionError, ServiceError
from repro.runtime import Session
from repro.service import (
    FairShareQueue,
    Job,
    JobSpec,
    JobStatus,
    MitigationService,
    ResultStore,
)
from repro.service.job import job_fingerprint, resolve_spec_circuit
from repro.workloads import workload_by_name


def solo_payload(spec: JobSpec, service: MitigationService) -> dict:
    """The payload a solo, equally-parameterised session produces."""
    with Session(
        ibmq_toronto(),
        seed=spec.seed,
        total_trials=spec.total_trials,
        exact=spec.exact,
        compile_attempts=service.compile_attempts,
        cpm_attempts=service.cpm_attempts,
        ensemble_size=service.ensemble_size,
    ) as session:
        workload = workload_by_name(spec.workload)
        prepared = session.prepare_scheme(spec.scheme, workload)
        result = session._run_prepared(prepared)
        return MitigationService._payload(spec, result)


class TestJobSpec:
    def test_roundtrip(self):
        spec = JobSpec(tenant="a", workload="GHZ-4", seed=3, priority=2)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_unknown_fields(self):
        with pytest.raises(ServiceError, match="unknown job-spec fields"):
            JobSpec.from_dict({"tenant": "a", "workload": "GHZ-4", "nope": 1})

    def test_needs_workload_or_qasm(self):
        with pytest.raises(ServiceError, match="exactly one"):
            JobSpec(tenant="a")
        with pytest.raises(ServiceError, match="exactly one"):
            JobSpec(tenant="a", workload="GHZ-4", qasm="OPENQASM 2.0;")

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ServiceError, match="unknown scheme"):
            JobSpec(tenant="a", workload="GHZ-4", scheme="magic")

    def test_fingerprint_ignores_tenant_and_priority(self):
        base = JobSpec(tenant="a", workload="GHZ-4", priority=0)
        other = JobSpec(tenant="b", workload="GHZ-4", priority=9)
        circuit = resolve_spec_circuit(base).circuit
        assert job_fingerprint(base, circuit, "dev", "salt") == job_fingerprint(
            other, circuit, "dev", "salt"
        )

    def test_fingerprint_depends_on_seed_and_trials(self):
        base = JobSpec(tenant="a", workload="GHZ-4")
        circuit = resolve_spec_circuit(base).circuit
        fp = job_fingerprint(base, circuit, "dev", "salt")
        for variant in (
            JobSpec(tenant="a", workload="GHZ-4", seed=1),
            JobSpec(tenant="a", workload="GHZ-4", total_trials=4096),
            JobSpec(tenant="a", workload="GHZ-4", exact=False),
        ):
            assert job_fingerprint(variant, circuit, "dev", "salt") != fp


class TestFairShareQueue:
    def _job(self, tenant: str, priority: int = 0) -> Job:
        return Job(
            spec=JobSpec(tenant=tenant, workload="GHZ-4", priority=priority)
        )

    def test_priority_then_fifo_order(self):
        queue = FairShareQueue(capacity=8, fair_share=1.0)
        first = queue.push(self._job("a", priority=0))
        urgent = queue.push(self._job("a", priority=5))
        second = queue.push(self._job("a", priority=0))
        drained = queue.pop_batch(8)
        assert [j.job_id for j in drained] == [
            urgent.job_id, first.job_id, second.job_id
        ]

    def test_backpressure_when_full(self):
        queue = FairShareQueue(capacity=2, fair_share=1.0)
        queue.push(self._job("a"))
        queue.push(self._job("b"))
        with pytest.raises(AdmissionError, match="queue full"):
            queue.push(self._job("c"))
        assert queue.stats()["rejected_full"] == 1

    def test_fair_share_caps_one_tenant(self):
        queue = FairShareQueue(capacity=4, fair_share=0.5)
        queue.push(self._job("greedy"))
        queue.push(self._job("greedy"))
        with pytest.raises(AdmissionError, match="fair-share"):
            queue.push(self._job("greedy"))
        # Other tenants still fit: the greedy tenant never fills the queue.
        queue.push(self._job("patient"))
        assert queue.stats()["rejected_fair_share"] == 1
        assert queue.pending_by_tenant() == {"greedy": 2, "patient": 1}

    def test_pop_releases_fair_share_slots(self):
        queue = FairShareQueue(capacity=4, fair_share=0.5)
        queue.push(self._job("a"))
        queue.push(self._job("a"))
        queue.pop_batch(1)
        queue.push(self._job("a"))  # slot freed; no AdmissionError
        assert len(queue) == 2


class TestResultStore:
    def test_roundtrip_and_counters(self):
        store = ResultStore()
        assert store.get("fp") is None
        store.put("fp", {"scheme": "jigsaw", "x": [1, 2]})
        payload = store.get("fp")
        assert payload["x"] == [1, 2]
        assert payload["payload_version"] == 1
        assert store.stats()["hits"] == 1 and store.stats()["misses"] == 1

    def test_lru_eviction(self):
        store = ResultStore(max_entries=2)
        store.put("a", {"v": 1})
        store.put("b", {"v": 2})
        assert store.get("a")["v"] == 1  # refresh a
        store.put("c", {"v": 3})  # evicts b (LRU)
        assert "b" not in store and "a" in store and "c" in store
        assert store.stats()["evictions"] == 1

    def test_disk_roundtrip(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        store = ResultStore(path=path)
        store.put("fp1", {"scheme": "baseline", "v": 1})
        store.put("fp2", {"scheme": "jigsaw", "v": 2})
        store.put("fp1", {"scheme": "baseline", "v": 10})  # update wins

        reloaded = ResultStore(path=path)
        assert reloaded.get("fp1")["v"] == 10
        assert reloaded.get("fp2")["v"] == 2
        assert reloaded.stats()["loaded"] == 3

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        store = ResultStore(path=path)
        store.put("fp1", {"v": 1})
        with open(path, "a") as handle:
            handle.write('{"fingerprint": "fp2", "payl')  # crash artifact
        reloaded = ResultStore(path=path)
        assert reloaded.get("fp1")["v"] == 1
        assert "fp2" not in reloaded

    def test_refuses_future_payload_version(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        with open(path, "w") as handle:
            handle.write(
                '{"fingerprint": "fp", "payload_version": 99, "payload": {}}\n'
            )
        from repro.exceptions import PayloadError

        with pytest.raises(PayloadError, match="payload_version 99"):
            ResultStore(path=path)


@pytest.fixture(scope="module")
def exact_specs():
    """A small multi-tenant mix: overlapping programs, varied budgets."""
    return [
        JobSpec(tenant="alice", workload="GHZ-4", total_trials=2048, seed=0),
        JobSpec(tenant="bob", workload="GHZ-4", total_trials=4096, seed=0),
        JobSpec(tenant="bob", workload="BV-4", total_trials=2048, seed=0,
                scheme="baseline"),
        JobSpec(tenant="carol", workload="BV-4", total_trials=2048, seed=3,
                scheme="jigsaw_m"),
    ]


@pytest.fixture(scope="module")
def solo_payloads(exact_specs):
    service = MitigationService()  # only for knob defaults
    return [solo_payload(spec, service) for spec in exact_specs]


class TestServiceDeterminism:
    def run_service(self, specs, **kwargs):
        with MitigationService(**kwargs) as service:
            jobs = [service.submit(spec) for spec in specs]
            service.drain()
            for job in jobs:
                assert job.status is JobStatus.DONE, job.error
            return [job.result for job in jobs]

    def test_matches_solo_sessions(self, exact_specs, solo_payloads):
        assert self.run_service(exact_specs) == solo_payloads

    def test_arrival_order_irrelevant(self, exact_specs, solo_payloads):
        reordered = list(reversed(exact_specs))
        results = self.run_service(reordered)
        assert results == list(reversed(solo_payloads))

    def test_batch_composition_irrelevant(self, exact_specs, solo_payloads):
        # max_batch=1: every job executes alone — same results as one
        # merged batch of everything.
        assert (
            self.run_service(exact_specs, max_batch=1) == solo_payloads
        )

    def test_worker_count_irrelevant(self, exact_specs, solo_payloads):
        assert self.run_service(exact_specs, workers=4) == solo_payloads

    def test_sampled_mode_matches_solo(self):
        specs = [
            JobSpec(tenant="a", workload="GHZ-4", total_trials=1024,
                    seed=5, exact=False),
            JobSpec(tenant="b", workload="BV-4", total_trials=1024,
                    seed=5, exact=False, scheme="baseline"),
        ]
        with MitigationService(workers=3) as service:
            solos = [solo_payload(spec, service) for spec in specs]
        assert self.run_service(specs, workers=3) == solos
        # And merged vs per-job batches agree in sampled mode too.
        assert self.run_service(specs, max_batch=1) == solos

    def test_all_schemes_match_solo(self):
        specs = [
            JobSpec(tenant="t", workload="BV-4", total_trials=1024,
                    seed=2, scheme=scheme)
            for scheme in (
                "baseline", "edm", "jigsaw", "jigsaw_nr", "jigsaw_m",
                "mbm", "jigsaw_mbm",
            )
        ]
        with MitigationService() as service:
            solos = [solo_payload(spec, service) for spec in specs]
        assert self.run_service(specs) == solos


class TestServiceBehaviour:
    def test_memoization_within_and_across_drains(self):
        spec = JobSpec(tenant="a", workload="GHZ-4", total_trials=1024)
        with MitigationService() as service:
            first = service.submit(spec)
            duplicate = service.submit(spec.with_tenant("b"))
            service.drain()
            assert first.source == "executed"
            assert duplicate.source == "memoized"
            assert duplicate.result == first.result
            # Resubmission after the drain returns instantly, no queueing.
            instant = service.submit(spec)
            assert instant.status is JobStatus.DONE
            assert instant.source == "memoized"
            stats = service.service_stats()["jobs"]
            assert stats["executed"] == 1 and stats["memoized"] == 2

    def test_cross_job_coalescing_reduces_executions(self):
        # Three tenants, identical program content -> one evaluation per
        # unique executable, not one per job.
        specs = [
            JobSpec(tenant=t, workload="GHZ-4", total_trials=n, seed=0)
            for t, n in (("a", 1024), ("b", 2048), ("c", 4096))
        ]
        with MitigationService() as service:
            for spec in specs:
                service.submit(spec)
            service.drain()
            backend = service.service_stats()["backend"]
            assert backend["spliced_parts"] == 3
            assert backend["requests"] == 3 * backend["channel_evals"]
            assert backend["coalesced_requests"] == backend["requests"] - backend["channel_evals"]

    def test_payloads_survive_json_roundtrip_byte_identically(self):
        # The disk store round-trips payloads through JSON; every scheme's
        # payload must come back equal (notably: no int dict keys, which
        # JSON silently turns into strings).
        import json

        specs = [
            JobSpec(tenant="a", workload="BV-4", total_trials=1024,
                    scheme=scheme)
            for scheme in ("baseline", "jigsaw", "jigsaw_m")
        ]
        with MitigationService() as service:
            jobs = [service.submit(spec) for spec in specs]
            service.drain()
            for job in jobs:
                assert job.status is JobStatus.DONE, job.error
                assert json.loads(json.dumps(job.result)) == job.result

    def test_disk_store_survives_service_restart(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        spec = JobSpec(tenant="a", workload="BV-4", total_trials=1024)
        with MitigationService(store=ResultStore(path=path)) as service:
            job = service.submit(spec)
            service.drain()
            executed_payload = job.result
        with MitigationService(store=ResultStore(path=path)) as service:
            job = service.submit(spec)
            assert job.status is JobStatus.DONE
            assert job.source == "memoized"
            assert job.result == executed_payload

    def test_failed_job_reports_error(self):
        # MBM on an 18-bit output exceeds MAX_MBM_QUBITS (16); the check
        # fires at preparation, before any compilation happens.
        spec = JobSpec(tenant="a", workload="GHZ-18", scheme="mbm",
                       total_trials=1024)
        with MitigationService() as service:
            job = service.submit(spec)
            service.drain()
            assert job.status is JobStatus.FAILED
            assert "MBM" in job.error
            with pytest.raises(ServiceError, match="failed"):
                service.result(job)

    def test_store_failure_costs_memoization_not_results(self, tmp_path):
        # A store that cannot persist must not fail jobs or kill the
        # worker — the computed result still reaches the caller.
        store = ResultStore(path=str(tmp_path / "store.jsonl"))
        store.path = str(tmp_path / "no-such-dir" / "store.jsonl")
        with MitigationService(store=store) as service:
            job = service.submit(
                JobSpec(tenant="a", workload="GHZ-4", total_trials=1024)
            )
            service.drain()
            assert job.status is JobStatus.DONE, job.error
            assert service.service_stats()["jobs"]["store_errors"] == 1

    def test_memoized_result_is_isolated_from_caller_mutation(self):
        spec = JobSpec(tenant="a", workload="GHZ-4", total_trials=1024)
        with MitigationService() as service:
            first = service.submit(spec)
            service.drain()
            pristine = service.submit(spec.with_tenant("b")).result
            # Vandalise the served copy; the store entry must not notice.
            pristine["output_pmf"]["probs"][0] = 123.0
            again = service.submit(spec.with_tenant("c")).result
            assert again["output_pmf"]["probs"][0] != 123.0
            assert again == first.result

    def test_unknown_device_rejected_at_submit(self):
        with MitigationService() as service:
            with pytest.raises(ServiceError, match="unknown device"):
                service.submit(
                    JobSpec(tenant="a", workload="GHZ-4", device="nope")
                )

    def test_inline_qasm_job(self):
        qasm = (
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[3];\ncreg c[3];\n"
            "h q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n"
            "measure q -> c;\n"
        )
        spec = JobSpec(tenant="a", qasm=qasm, total_trials=1024)
        with MitigationService() as service:
            job = service.submit(spec)
            service.drain()
            assert job.status is JobStatus.DONE, job.error
            assert job.result["scheme"] == "jigsaw"

    def test_service_smoke_submit_poll_fetch(self):
        """The worker-loop smoke: submit -> poll -> fetch, hard timeout."""
        with MitigationService() as service:
            service.start()
            job = service.submit(
                JobSpec(tenant="a", workload="GHZ-4", total_trials=1024)
            )
            deadline = time.monotonic() + 60.0
            while not job.done and time.monotonic() < deadline:
                time.sleep(0.01)
            settled = service.wait(job.job_id, timeout=60.0)
            assert settled.status is JobStatus.DONE, settled.error
            payload = service.result(job.job_id)
            assert payload["scheme"] == "jigsaw"
            service.stop()

    def test_drain_refused_while_worker_runs(self):
        with MitigationService() as service:
            service.start()
            with pytest.raises(ServiceError, match="worker thread"):
                service.drain()

    def test_wait_timeout(self):
        with MitigationService() as service:
            job = service.submit(
                JobSpec(tenant="a", workload="GHZ-4", total_trials=1024)
            )
            with pytest.raises(ServiceError, match="timed out"):
                service.wait(job, timeout=0.01)

    def test_concurrent_submitters_one_worker(self):
        """Many submitting threads, one worker loop: all jobs settle and
        every result matches its fingerprint-identical peers."""
        with MitigationService(capacity=64, fair_share=1.0) as service:
            service.start()
            jobs, errors = [], []
            lock = threading.Lock()

            def submit(tenant):
                try:
                    job = service.submit(
                        JobSpec(tenant=tenant, workload="GHZ-4",
                                total_trials=1024, seed=0)
                    )
                    with lock:
                        jobs.append(job)
                except Exception as exc:  # pragma: no cover - diagnostic
                    with lock:
                        errors.append(exc)

            threads = [
                threading.Thread(target=submit, args=(f"t{i}",))
                for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            for job in jobs:
                service.wait(job, timeout=120.0)
            payloads = {id(j): j.result for j in jobs}
            reference = jobs[0].result
            assert all(p == reference for p in payloads.values())
