"""Thread-hammering the shared caches: consistent counters, no dup work.

The service layer shares one :class:`CompilationCache` per device across
every job session (and ``compile_workers`` fans CPM compilation out over
threads), so the stage store must keep two promises under contention:

* **counters consistent** — ``hits + misses`` equals the number of
  lookups, entry counts match what was stored, no lost updates;
* **no duplicate in-flight computes** — concurrent misses on one key run
  the compute exactly once (`stage_get_or_compute`'s per-key locks), the
  guarantee behind the route-once invariant at any worker count.

The :class:`ResultStore` gets the same treatment for the service's
memoization path.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import SimulationError
from repro.runtime import CompilationCache
from repro.service import ResultStore

THREADS = 16
KEYS = 8
ROUNDS = 40


class TestStageStoreHammering:
    def test_raw_get_put_counters_consistent(self):
        cache = CompilationCache()
        lookups_per_thread = KEYS * ROUNDS

        def worker(thread_index: int) -> None:
            for round_index in range(ROUNDS):
                for key_index in range(KEYS):
                    key = f"key-{key_index}"
                    value = cache.stage_get("route", key)
                    if value is None:
                        cache.stage_put("route", key, f"routed-{key_index}")

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(worker, range(THREADS)))

        stats = cache.stage_stats()["route"]
        assert stats["hits"] + stats["misses"] == THREADS * lookups_per_thread
        assert stats["entries"] == KEYS
        # Every key ends up storing exactly one value, readable by all.
        for key_index in range(KEYS):
            assert cache.stage_get("route", f"key-{key_index}") == (
                f"routed-{key_index}"
            )

    def test_get_or_compute_runs_compute_once_per_key(self):
        cache = CompilationCache()
        computes: Counter = Counter()
        computes_lock = threading.Lock()
        barrier = threading.Barrier(THREADS)

        def worker(thread_index: int) -> int:
            barrier.wait()  # maximise contention on the cold store
            observed_hits = 0
            for round_index in range(ROUNDS):
                for key_index in range(KEYS):
                    key = f"key-{key_index}"

                    def compute(key_index=key_index):
                        with computes_lock:
                            computes[key_index] += 1
                        time.sleep(0.0005)  # widen the in-flight window
                        return f"artifact-{key_index}"

                    value, hit = cache.stage_get_or_compute(
                        "route", key, compute
                    )
                    assert value == f"artifact-{key_index}"
                    observed_hits += int(hit)
            return observed_hits

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            hits = sum(pool.map(worker, range(THREADS)))

        # The whole point: one compute per key, no matter how many
        # threads missed concurrently.
        assert computes == Counter({k: 1 for k in range(KEYS)})
        stats = cache.stage_stats()["route"]
        total_lookups = THREADS * ROUNDS * KEYS
        assert stats["hits"] + stats["misses"] == total_lookups
        assert stats["entries"] == KEYS
        # Waiters that replayed a peer's in-flight compute return hit=False
        # only for the single computing call per key.
        assert hits >= total_lookups - THREADS * KEYS

    def test_get_or_compute_failure_releases_key(self):
        cache = CompilationCache()
        attempts = []

        def failing():
            attempts.append(1)
            raise SimulationError("boom")

        with pytest.raises(SimulationError):
            cache.stage_get_or_compute("route", "k", failing)
        # The key lock was released: a retry computes again and succeeds.
        value, hit = cache.stage_get_or_compute("route", "k", lambda: "ok")
        assert value == "ok" and not hit
        assert len(attempts) == 1

    def test_disabled_cache_still_serializes_per_key(self):
        cache = CompilationCache.disabled()
        concurrent = []
        lock = threading.Lock()
        peak = []

        def compute():
            with lock:
                concurrent.append(1)
                peak.append(len(concurrent))
            time.sleep(0.002)
            with lock:
                concurrent.pop()
            return "v"

        def worker(_):
            value, hit = cache.stage_get_or_compute("route", "same", compute)
            assert value == "v" and not hit

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(worker, range(8)))
        # Nothing is ever stored, so all 8 computed — but never two at once.
        assert max(peak) == 1
        assert cache.stage_entries() == 0


class TestResultStoreHammering:
    def test_concurrent_put_get_counters_consistent(self, tmp_path):
        store = ResultStore(path=str(tmp_path / "store.jsonl"))
        gets_per_thread = KEYS * ROUNDS

        def worker(thread_index: int) -> None:
            for round_index in range(ROUNDS):
                for key_index in range(KEYS):
                    key = f"fp-{key_index}"
                    if store.get(key) is None:
                        store.put(key, {"value": key_index})

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(worker, range(THREADS)))

        stats = store.stats()
        assert stats["hits"] + stats["misses"] == THREADS * gets_per_thread
        assert stats["entries"] == KEYS
        # The journal replays to the same state (duplicates collapse).
        reloaded = ResultStore(path=str(tmp_path / "store.jsonl"))
        for key_index in range(KEYS):
            assert reloaded.get(f"fp-{key_index}") == {
                "value": key_index,
                "payload_version": 1,
            }

    def test_concurrent_eviction_keeps_bound(self):
        store = ResultStore(max_entries=4)

        def worker(thread_index: int) -> None:
            for key_index in range(64):
                store.put(f"fp-{thread_index}-{key_index}", {"v": key_index})
                store.get(f"fp-{thread_index}-{key_index}")

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(worker, range(THREADS)))
        assert len(store) <= 4
        assert store.stats()["evictions"] == THREADS * 64 - len(store)
