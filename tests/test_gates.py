"""Unit tests for the gate library."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.gates import (
    GATE_ARITY,
    GATE_PARAM_COUNT,
    Gate,
    controlled,
    gate_matrix,
    is_unitary,
    u3_matrix,
)
from repro.exceptions import GateError


def _random_params(name, value=0.7):
    return tuple([value] * GATE_PARAM_COUNT[name])


class TestGateMatrices:
    @pytest.mark.parametrize("name", sorted(GATE_ARITY))
    def test_every_gate_is_unitary(self, name):
        matrix = gate_matrix(name, _random_params(name))
        assert is_unitary(matrix)

    @pytest.mark.parametrize("name", sorted(GATE_ARITY))
    def test_matrix_dimension_matches_arity(self, name):
        matrix = gate_matrix(name, _random_params(name))
        dim = 1 << GATE_ARITY[name]
        assert matrix.shape == (dim, dim)

    def test_x_flips_basis(self):
        x = gate_matrix("x")
        assert np.allclose(x @ np.array([1, 0]), np.array([0, 1]))

    def test_h_creates_superposition(self):
        h = gate_matrix("h")
        state = h @ np.array([1.0, 0.0])
        assert np.allclose(np.abs(state) ** 2, [0.5, 0.5])

    def test_cx_control_is_first_qubit(self):
        cx = gate_matrix("cx")
        # |10> (control=1, target=0) -> |11>
        state = np.zeros(4)
        state[2] = 1.0
        out = cx @ state
        assert np.isclose(abs(out[3]), 1.0)

    def test_cz_phase_only_on_11(self):
        cz = gate_matrix("cz")
        assert np.allclose(np.diag(cz), [1, 1, 1, -1])

    def test_swap_exchanges(self):
        swap = gate_matrix("swap")
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        out = swap @ state
        assert np.isclose(abs(out[2]), 1.0)  # |10>

    def test_rz_is_diagonal(self):
        rz = gate_matrix("rz", (0.3,))
        assert np.allclose(rz, np.diag(np.diag(rz)))

    def test_u3_special_cases(self):
        assert np.allclose(u3_matrix(0, 0, 0), np.eye(2))
        x_like = u3_matrix(math.pi, 0, math.pi)
        assert np.isclose(abs(x_like[1, 0]), 1.0)

    def test_s_squared_is_z(self):
        s = gate_matrix("s")
        assert np.allclose(s @ s, gate_matrix("z"))

    def test_t_fourth_power_is_z(self):
        t = gate_matrix("t")
        assert np.allclose(np.linalg.matrix_power(t, 4), gate_matrix("z"))

    def test_sx_squared_is_x(self):
        sx = gate_matrix("sx")
        assert np.allclose(sx @ sx, gate_matrix("x"))

    def test_rzz_diagonal_phases(self):
        rzz = gate_matrix("rzz", (0.8,))
        diag = np.diag(rzz)
        assert np.isclose(diag[0], diag[3])
        assert np.isclose(diag[1], diag[2])
        assert np.isclose(diag[0], np.conj(diag[1]))

    def test_ccx_flips_target_only_when_both_controls_set(self):
        ccx = gate_matrix("ccx")
        state = np.zeros(8)
        state[6] = 1.0  # |110>: controls (bits 2,1) set, target (bit 0) clear
        assert np.isclose(abs((ccx @ state)[7]), 1.0)

    def test_unknown_gate_raises(self):
        with pytest.raises(GateError):
            gate_matrix("nope")

    def test_wrong_param_count_raises(self):
        with pytest.raises(GateError):
            gate_matrix("rx", ())
        with pytest.raises(GateError):
            gate_matrix("h", (0.1,))


class TestGateObjects:
    def test_num_qubits(self):
        assert Gate("cx").num_qubits == 2
        assert Gate("h").num_qubits == 1

    def test_params_normalised_to_float(self):
        gate = Gate("rx", (1,))
        assert isinstance(gate.params[0], float)

    def test_equality_and_hash(self):
        assert Gate("rx", (0.5,)) == Gate("rx", (0.5,))
        assert hash(Gate("h")) == hash(Gate("h"))
        assert Gate("rx", (0.5,)) != Gate("rx", (0.6,))

    @pytest.mark.parametrize(
        "name", ["h", "x", "y", "z", "cx", "cz", "swap", "id"]
    )
    def test_self_inverse_gates(self, name):
        assert Gate(name).inverse() == Gate(name)

    @pytest.mark.parametrize("name", sorted(GATE_ARITY))
    def test_inverse_matrix_is_conjugate_transpose(self, name):
        gate = Gate(name, _random_params(name, 0.9))
        inv = gate.inverse()
        product = inv.matrix() @ gate.matrix()
        dim = product.shape[0]
        # Allow a global phase: product should be phase * identity.
        phase = product[0, 0]
        assert np.isclose(abs(phase), 1.0)
        assert np.allclose(product, phase * np.eye(dim))

    def test_invalid_gate_name_raises(self):
        with pytest.raises(GateError):
            Gate("bad")

    def test_invalid_params_raise(self):
        with pytest.raises(GateError):
            Gate("u3", (0.1,))


class TestControlled:
    def test_controlled_x_is_cx(self):
        assert np.allclose(controlled(gate_matrix("x")), gate_matrix("cx"))

    def test_controlled_rejects_large_matrix(self):
        with pytest.raises(GateError):
            controlled(np.eye(4))


class TestIsUnitary:
    def test_rejects_non_square(self):
        assert not is_unitary(np.ones((2, 3)))

    def test_rejects_non_unitary(self):
        assert not is_unitary(np.array([[1, 1], [0, 1]], dtype=complex))

    @given(st.floats(min_value=-10, max_value=10, allow_nan=False))
    def test_rotations_always_unitary(self, theta):
        for name in ("rx", "ry", "rz", "p"):
            assert is_unitary(gate_matrix(name, (theta,)))

    @given(
        st.floats(min_value=-7, max_value=7),
        st.floats(min_value=-7, max_value=7),
        st.floats(min_value=-7, max_value=7),
    )
    def test_u3_always_unitary(self, theta, phi, lam):
        assert is_unitary(u3_matrix(theta, phi, lam))
