"""Smoke tests for the per-figure experiment sweeps (small parameters)."""

import pytest

from repro.experiments.cpm_sensitivity import (
    build_cpm_pool,
    figure9a_sweep,
    figure9a_text,
    figure9b_distribution,
    figure9b_text,
)
from repro.experiments.mbm_comparison import figure14_text, run_figure14
from repro.experiments.qaoa_arg import run_table5, table5_text
from repro.experiments.recompilation import figure10_per_qubit, figure10_text
from repro.experiments.scalability_exp import (
    figure13_epsilon_sweep,
    figure13_text,
    table6_observed_outcomes,
    table6_text,
)
from repro.experiments.trials_sweep import figure7_text, run_trials_sweep
from repro.workloads import bv, qaoa_maxcut
from tests.conftest import make_varied_line_device


@pytest.fixture(scope="module")
def device():
    return make_varied_line_device(num_qubits=8)


class TestFigure7:
    def test_sweep_and_render(self, device):
        points = run_trials_sweep(
            device=device,
            workload_names=("GHZ-6",),
            trial_ladder=(1_024, 8_192),
            seed=1,
        )
        assert len(points) == 2
        text = figure7_text(points)
        assert "T=1024" in text

    def test_pst_saturates(self, device):
        """More trials do not systematically improve PST (Fig. 7)."""
        points = run_trials_sweep(
            device=device,
            workload_names=("GHZ-6",),
            trial_ladder=(16_384, 131_072),
            seed=2,
        )
        small, large = points[0].pst, points[1].pst
        assert large == pytest.approx(small, abs=0.05)


class TestFigure9:
    @pytest.fixture(scope="class")
    def pool(self, device):
        return build_cpm_pool(
            device=device,
            workload=qaoa_maxcut(6, depth=1),
            seed=3,
            exact=True,
        )

    def test_pool_has_all_pairs(self, pool):
        assert len(pool.marginals) == 15  # 6C2

    def test_sweep_saturates(self, pool):
        points = figure9a_sweep(
            pool, cpm_counts=(1, 4, 15), repeats=5, seed=4
        )
        assert len(points) == 3
        # Gains at 15 CPMs should not be far above gains at 4 (saturation).
        assert points[2].mean_relative_pst <= points[1].mean_relative_pst * 1.5

    def test_selection_insensitive(self, pool):
        stats = figure9b_distribution(pool, num_cpms=6, repeats=10, seed=5)
        assert stats["repeats"] == 10
        assert stats["std"] < 0.5 * max(stats["mean"], 1e-9)

    def test_render(self, pool):
        points = figure9a_sweep(pool, cpm_counts=(1, 4), repeats=2, seed=6)
        assert "Figure 9a" in figure9a_text(points)
        stats = figure9b_distribution(pool, num_cpms=6, repeats=5, seed=7)
        assert "Figure 9b" in figure9b_text(stats)


class TestFigure10:
    def test_per_qubit_improvement(self, device):
        rows = figure10_per_qubit(
            device=device, workload=bv(5), seed=8, exact=True
        )
        assert len(rows) == 5
        # Recompiled CPMs must not be worse on any measured qubit.
        assert all(r.cpm >= r.baseline - 0.02 for r in rows)
        # And strictly better somewhere (the paper's headline).
        assert any(r.improvement > 1.01 for r in rows)

    def test_render(self, device):
        rows = figure10_per_qubit(device=device, workload=bv(5), seed=8)
        assert "Figure 10" in figure10_text(rows)


class TestTable6AndFigure13:
    def test_observed_far_below_maximum(self, device):
        rows = table6_observed_outcomes(
            devices=[device], workload_name="Graycode-8", trials=32_768, seed=9
        )
        row = rows[0]
        assert row.maximum == 256
        assert row.observed <= row.maximum
        text = table6_text(rows)
        assert "Table 6" in text

    def test_epsilon_decreases_with_trials(self, device):
        points = figure13_epsilon_sweep(
            device=device,
            workload_names=("GHZ-6",),
            trial_ladder=(8_192, 131_072),
            seed=10,
        )
        assert points[0].epsilon >= points[1].epsilon
        assert "Figure 13" in figure13_text(points)


class TestTable5:
    def test_arg_improves(self, device):
        rows = run_table5(
            devices=[device],
            workload_names=("QAOA-8 p1",),
            seed=11,
            exact=True,
        )
        row = rows[0]
        assert row.jigsaw < row.baseline
        assert row.jigsaw_m < row.baseline
        assert "Table 5" in table5_text(rows)


class TestFigure14:
    def test_composition_wins(self, device):
        rows = run_figure14(
            devices=[device],
            workload_names=("QAOA-8 p1",),
            seed=12,
            exact=True,
        )
        row = rows[0]
        assert row.jigsaw_mbm >= row.jigsaw * 0.98
        assert row.jigsaw_mbm >= row.mbm * 0.98
        assert "Figure 14" in figure14_text(rows)
