"""Tests for trial-budget planning (Appendix A.2) and the §7 model."""

import math

import pytest

from repro.core import (
    ScalabilityModel,
    cpm_trial_estimate,
    plan_trial_budget,
    split_trial_budget,
    table7_rows,
    trials_for_outcome,
    trials_to_observe_all,
)
from repro.exceptions import ReconstructionError, ReproError


class TestTrialFormulas:
    def test_single_outcome_formula(self):
        """Eq. 8: t = -ln(1-P) * N."""
        assert trials_for_outcome(4, 0.99) == math.ceil(-math.log(0.01) * 4)

    def test_all_outcomes_formula(self):
        """Eq. 9: t = -ln(1-P) * N^2."""
        assert trials_to_observe_all(4, 0.99) == math.ceil(
            -math.log(0.01) * 16
        )

    def test_paper_150_trials_claim(self):
        """Appendix A.2: a size-2 CPM needs ~150 trials at 99.99 %."""
        estimate = cpm_trial_estimate(2, confidence=0.9999)
        assert 140 <= estimate <= 160

    def test_jigsawm_still_thousands(self):
        """Appendix A.2: JigSaw-M's larger CPMs need a few thousand trials."""
        estimate = cpm_trial_estimate(5, confidence=0.9999)
        assert 9_000 <= estimate <= 10_000

    def test_confidence_bounds(self):
        with pytest.raises(ReconstructionError):
            trials_for_outcome(4, 1.0)
        with pytest.raises(ReconstructionError):
            trials_for_outcome(4, 0.0)

    def test_invalid_outcomes(self):
        with pytest.raises(ReconstructionError):
            trials_to_observe_all(0, 0.9)

    def test_invalid_subset_size(self):
        with pytest.raises(ReconstructionError):
            cpm_trial_estimate(0)


class TestBudgetPlan:
    def test_even_split(self):
        plan = plan_trial_budget(32_768, [2], [16], global_fraction=0.5)
        assert plan["global_trials"] == 16_384
        assert plan["trials_per_cpm"] == 1_024
        assert plan["layers"][0]["sufficient"] is True

    def test_insufficient_flagged(self):
        plan = plan_trial_budget(640, [5], [16])
        assert plan["layers"][0]["sufficient"] is False

    def test_misaligned_inputs(self):
        with pytest.raises(ReconstructionError):
            plan_trial_budget(1000, [2, 3], [4])

    def test_zero_cpms_rejected(self):
        with pytest.raises(ReconstructionError):
            plan_trial_budget(1000, [2], [0])

    def test_report_agrees_with_canonical_split(self):
        """Regression: the A.2 report must describe the executed budget.

        ``plan_trial_budget`` used to report ``round(total * fraction)``
        global trials while the runner folded the remainder in — for odd
        budgets the two disagreed and the report was non-conserving.
        """
        for total in (1_001, 16_383, 32_769):
            report = plan_trial_budget(total, [2], [16])
            global_trials, per_cpm = split_trial_budget(total, 16, 0.5)
            assert report["global_trials"] == global_trials
            assert report["trials_per_cpm"] == per_cpm
            assert (
                report["global_trials"] + report["trials_per_cpm"] * 16
                == total
            )
            assert report["allocated_trials"] == total

    def test_split_conserves_budget(self):
        for total in (35, 1_001, 16_383):
            global_trials, per_cpm = split_trial_budget(total, 16)
            assert global_trials + per_cpm * 16 == total

    def test_split_rejects_starved_budget(self):
        with pytest.raises(ReconstructionError):
            split_trial_budget(33, 16)

    def test_size_aware_layers(self):
        report = plan_trial_budget(32_768, [2, 5], [16, 16])
        by_size = {layer["subset_size"]: layer for layer in report["layers"]}
        assert by_size[2]["min_trials_needed"] < by_size[5]["min_trials_needed"]
        assert by_size[2]["subset_trials"] == report["trials_per_cpm"] * 16
        assert report["sufficient"] == all(
            layer["sufficient"] for layer in report["layers"]
        )


class TestScalabilityModel:
    def test_table7_jigsaw_ops_100q(self):
        """Table 7: JigSaw, n=100, eps=0.05, T=1024K -> 21.0 M ops."""
        model = ScalabilityModel(100, 100, (5,), 0.05, 0.05, 1024 * 1024)
        assert model.operations_millions() == pytest.approx(21.0, rel=0.01)

    def test_table7_jigsawm_ops_100q(self):
        """Table 7: JigSaw-M, n=100, eps=0.05, T=1024K -> 83.9 M ops."""
        model = ScalabilityModel(
            100, 100, (5, 10, 15, 20), 0.05, 0.05, 1024 * 1024
        )
        assert model.operations_millions() == pytest.approx(83.9, rel=0.01)

    def test_table7_jigsaw_memory_upper_bound(self):
        """Table 7: JigSaw, n=100, eps=1, T=1024K -> 0.96 GB."""
        model = ScalabilityModel(100, 100, (5,), 1.0, 1.0, 1024 * 1024)
        assert model.memory_gb() == pytest.approx(0.96, abs=0.02)

    def test_table7_jigsawm_memory_upper_bound(self):
        """Table 7: JigSaw-M, n=100, eps=1, T=1024K -> 3.97 GB."""
        model = ScalabilityModel(
            100, 100, (5, 10, 15, 20), 1.0, 1.0, 1024 * 1024
        )
        assert model.memory_gb() == pytest.approx(3.97, abs=0.1)

    def test_table7_500q_ops(self):
        """Table 7: JigSaw, n=500, eps=0.05, T=32K -> 3.28 M ops."""
        model = ScalabilityModel(500, 500, (5,), 0.05, 0.05, 32 * 1024)
        assert model.operations_millions() == pytest.approx(3.28, rel=0.01)

    def test_linear_in_trials(self):
        small = ScalabilityModel(100, 100, (5,), 0.05, 0.05, 32 * 1024)
        large = ScalabilityModel(100, 100, (5,), 0.05, 0.05, 64 * 1024)
        assert large.operations() == pytest.approx(2 * small.operations(), rel=1e-6)

    def test_linear_in_qubits(self):
        """§7.4: complexity is linear in qubits (N = n CPMs)."""
        small = ScalabilityModel(100, 100, (5,), 0.05, 0.05, 32 * 1024)
        large = ScalabilityModel(500, 500, (5,), 0.05, 0.05, 32 * 1024)
        assert large.operations() == pytest.approx(
            5 * small.operations(), rel=1e-6
        )

    def test_local_entries_capped_by_outcomes(self):
        model = ScalabilityModel(100, 100, (2,), 0.05, 0.05, 1024 * 1024)
        assert model.local_entries(2) == 4  # min(2^2, delta*T)

    def test_local_entries_capped_by_trials(self):
        model = ScalabilityModel(100, 100, (20,), 0.05, 0.05, 32 * 1024)
        assert model.local_entries(20) == int(0.05 * 32 * 1024)

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            ScalabilityModel(0, 1, (2,), 0.5, 0.5, 100)
        with pytest.raises(ReproError):
            ScalabilityModel(10, 10, (2,), 1.5, 0.5, 100)
        with pytest.raises(ReproError):
            ScalabilityModel(10, 10, (), 0.5, 0.5, 100)

    def test_table7_rows_complete(self):
        rows = table7_rows()
        assert len(rows) == 8
        for row in rows:
            assert row["jigsawm_memory_gb"] >= row["jigsaw_memory_gb"]
            assert row["jigsawm_ops_millions"] == pytest.approx(
                4 * row["jigsaw_ops_millions"], rel=1e-6
            )
