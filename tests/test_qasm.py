"""Tests for OpenQASM 2.0 serialisation."""

import math

import pytest

from repro.circuits import QuantumCircuit, from_qasm, to_qasm
from repro.exceptions import CircuitError
from repro.sim import StatevectorSimulator


class TestExport:
    def test_header_and_registers(self, bell):
        text = to_qasm(bell)
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[2];" in text
        assert "creg c[2];" in text

    def test_gates_and_measures(self, bell):
        text = to_qasm(bell)
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text
        assert "measure q[0] -> c[0];" in text

    def test_pi_fractions_pretty(self):
        qc = QuantumCircuit(1).rx(math.pi / 2, 0).rz(-3 * math.pi / 4, 0)
        text = to_qasm(qc)
        assert "rx(pi/2)" in text
        assert "rz(-3*pi/4)" in text

    def test_barrier(self):
        qc = QuantumCircuit(2).h(0).barrier()
        assert "barrier q[0],q[1];" in to_qasm(qc)


class TestImport:
    def test_round_trip_structure(self, ghz4):
        restored = from_qasm(to_qasm(ghz4))
        assert restored == ghz4

    def test_round_trip_semantics(self):
        qc = QuantumCircuit(3)
        qc.h(0).rx(0.37, 1).cx(0, 2).rzz(1.1, 1, 2).u3(0.2, 0.4, 0.6, 0)
        qc.measure_all()
        restored = from_qasm(to_qasm(qc))
        sim = StatevectorSimulator()
        original = sim.ideal_distribution(qc)
        parsed = sim.ideal_distribution(restored)
        for key in set(original) | set(parsed):
            assert original.get(key, 0.0) == pytest.approx(
                parsed.get(key, 0.0), abs=1e-9
            )

    def test_parse_angle_forms(self):
        text = (
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[1];\ncreg c[1];\n"
            "rx(pi/2) q[0];\nrz(-pi) q[0];\nry(0.25) q[0];\n"
        )
        qc = from_qasm(text)
        gates = qc.gates()
        assert gates[0].gate.params[0] == pytest.approx(math.pi / 2)
        assert gates[1].gate.params[0] == pytest.approx(-math.pi)
        assert gates[2].gate.params[0] == pytest.approx(0.25)

    def test_missing_qreg_rejected(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\ncreg c[2];\n")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nh q[0]\n")

    def test_bad_angle_rejected(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nrx(two) q[0];\n")

    def test_comments_ignored(self):
        text = "OPENQASM 2.0;\nqreg q[1]; // register\nx q[0]; // flip\n"
        qc = from_qasm(text)
        assert qc.count_ops()["x"] == 1
