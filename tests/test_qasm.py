"""Tests for OpenQASM 2.0 serialisation."""

import math

import pytest

from repro.circuits import QuantumCircuit, from_qasm, to_qasm
from repro.exceptions import CircuitError
from repro.sim import StatevectorSimulator


class TestExport:
    def test_header_and_registers(self, bell):
        text = to_qasm(bell)
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[2];" in text
        assert "creg c[2];" in text

    def test_gates_and_measures(self, bell):
        text = to_qasm(bell)
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text
        assert "measure q[0] -> c[0];" in text

    def test_pi_fractions_pretty(self):
        qc = QuantumCircuit(1).rx(math.pi / 2, 0).rz(-3 * math.pi / 4, 0)
        text = to_qasm(qc)
        assert "rx(pi/2)" in text
        assert "rz(-3*pi/4)" in text

    def test_barrier(self):
        qc = QuantumCircuit(2).h(0).barrier()
        assert "barrier q[0],q[1];" in to_qasm(qc)


class TestImport:
    def test_round_trip_structure(self, ghz4):
        restored = from_qasm(to_qasm(ghz4))
        assert restored == ghz4

    def test_round_trip_semantics(self):
        qc = QuantumCircuit(3)
        qc.h(0).rx(0.37, 1).cx(0, 2).rzz(1.1, 1, 2).u3(0.2, 0.4, 0.6, 0)
        qc.measure_all()
        restored = from_qasm(to_qasm(qc))
        sim = StatevectorSimulator()
        original = sim.ideal_distribution(qc)
        parsed = sim.ideal_distribution(restored)
        for key in set(original) | set(parsed):
            assert original.get(key, 0.0) == pytest.approx(
                parsed.get(key, 0.0), abs=1e-9
            )

    def test_parse_angle_forms(self):
        text = (
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[1];\ncreg c[1];\n"
            "rx(pi/2) q[0];\nrz(-pi) q[0];\nry(0.25) q[0];\n"
        )
        qc = from_qasm(text)
        gates = qc.gates()
        assert gates[0].gate.params[0] == pytest.approx(math.pi / 2)
        assert gates[1].gate.params[0] == pytest.approx(-math.pi)
        assert gates[2].gate.params[0] == pytest.approx(0.25)

    def test_missing_qreg_rejected(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\ncreg c[2];\n")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nh q[0]\n")

    def test_bad_angle_rejected(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nrx(two) q[0];\n")

    def test_comments_ignored(self):
        text = "OPENQASM 2.0;\nqreg q[1]; // register\nx q[0]; // flip\n"
        qc = from_qasm(text)
        assert qc.count_ops()["x"] == 1


class TestQasmBenchStyle:
    """QASMBench-style files (Li et al., ACM TQC 2022): comments,
    includes, blank lines, broadcasts, arbitrary register names."""

    def test_block_comments_and_blank_lines(self):
        text = """
        /* QASMBench header
           spanning lines */
        OPENQASM 2.0;
        include "qelib1.inc";

        qreg q[2];  // two qubits
        creg c[2];

        h q[0]; /* inline */ cx q[0],q[1];
        measure q[0] -> c[0];
        measure q[1] -> c[1];
        """
        circuit = from_qasm(text)
        assert circuit.num_qubits == 2
        assert len(circuit.measurements) == 2

    def test_bare_register_barrier(self):
        circuit = from_qasm(
            "OPENQASM 2.0;\nqreg q[3];\ncreg c[3];\nh q[0];\nbarrier q;\n"
            "measure q[0] -> c[0];\n"
        )
        barrier = [i for i in circuit.instructions if i.kind == "barrier"]
        assert len(barrier) == 1 and barrier[0].qubits == (0, 1, 2)

    def test_register_broadcast_measure(self):
        circuit = from_qasm(
            "OPENQASM 2.0;\nqreg q[3];\ncreg c[3];\nh q[0];\n"
            "measure q -> c;\n"
        )
        assert circuit.measurement_map == {0: 0, 1: 1, 2: 2}

    def test_single_arg_gate_broadcast(self):
        circuit = from_qasm(
            "OPENQASM 2.0;\nqreg q[3];\ncreg c[3];\nh q;\nmeasure q -> c;\n"
        )
        gates = [i for i in circuit.instructions if i.is_gate]
        assert [g.qubits for g in gates] == [(0,), (1,), (2,)]

    def test_arbitrary_register_names_concatenate(self):
        circuit = from_qasm(
            "OPENQASM 2.0;\nqreg data[2];\nqreg anc[1];\ncreg out[3];\n"
            "h data[0];\ncx data[0],anc[0];\n"
            "measure data[0] -> out[0];\nmeasure anc[0] -> out[2];\n"
        )
        assert circuit.num_qubits == 3
        # anc[0] is the third flat qubit (after data's two).
        cx = [i for i in circuit.instructions if i.is_gate][1]
        assert cx.qubits == (0, 2)
        assert circuit.measurement_map == {0: 0, 2: 2}

    def test_statement_split_across_lines(self):
        circuit = from_qasm(
            "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\n"
            "cx\n  q[0],\n  q[1];\nmeasure q -> c;\n"
        )
        assert [i for i in circuit.instructions if i.is_gate][0].qubits == (0, 1)

    def test_gate_definitions_rejected_clearly(self):
        with pytest.raises(CircuitError, match="gate definitions"):
            from_qasm(
                "OPENQASM 2.0;\nqreg q[1];\n"
                "gate mygate a { h a; }\nmygate q[0];\n"
            )

    def test_classical_control_rejected_clearly(self):
        with pytest.raises(CircuitError, match="classically-controlled"):
            from_qasm(
                "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\n"
                "measure q[0] -> c[0];\nif (c == 1) x q[0];\n"
            )

    def test_duplicate_register_rejected(self):
        with pytest.raises(CircuitError, match="duplicate"):
            from_qasm("OPENQASM 2.0;\nqreg q[2];\nqreg q[3];\n")

    def test_out_of_range_index_rejected(self):
        with pytest.raises(CircuitError, match="out of range"):
            from_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[5];\n")


class TestFromQasmFile:
    def test_import_registers_in_suite(self, tmp_path):
        from repro.workloads import from_qasm_file, workload_by_name
        from repro.workloads.suite import _REGISTERED

        path = tmp_path / "ghz3_ext.qasm"
        path.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[3];\ncreg c[3];\n"
            "h q[0];\ncx q[0],q[1];\ncx q[1],q[2];\nbarrier q;\n"
            "measure q -> c;\n"
        )
        try:
            workload = from_qasm_file(str(path))
            assert workload.name == "ghz3_ext"
            # Modal ideal outcomes of a GHZ state: the two end states.
            assert workload.correct_outcomes == ("000", "111")
            assert workload_by_name("ghz3_ext") is workload
        finally:
            _REGISTERED.pop("ghz3_ext", None)

    def test_measureless_file_gets_measure_all(self, tmp_path):
        from repro.workloads import from_qasm_file

        path = tmp_path / "unmeasured.qasm"
        path.write_text("OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n")
        workload = from_qasm_file(str(path), register=False)
        assert workload.circuit.num_measurements == 2

    def test_cannot_shadow_builtin_names(self, tmp_path):
        from repro.exceptions import WorkloadError
        from repro.workloads import from_qasm_file

        path = tmp_path / "fake.qasm"
        path.write_text(
            "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\nmeasure q -> c;\n"
        )
        with pytest.raises(WorkloadError, match="shadows a built-in"):
            from_qasm_file(str(path), name="GHZ-4")

    def test_runs_through_jigsaw_session(self, tmp_path):
        from repro.devices import ibmq_toronto
        from repro.runtime import Session
        from repro.workloads import from_qasm_file

        path = tmp_path / "ext.qasm"
        path.write_text(
            "OPENQASM 2.0;\nqreg q[4];\ncreg c[4];\n"
            "h q[0];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[2],q[3];\n"
            "measure q -> c;\n"
        )
        workload = from_qasm_file(str(path), register=False)
        with Session(ibmq_toronto(), seed=0, total_trials=1024) as session:
            result = session.run(session.plan(workload, scheme="jigsaw"))
            metrics = session.evaluate(workload, result.output_pmf)
        assert 0.0 < metrics.pst <= 1.0
