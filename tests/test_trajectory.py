"""Tests for the Pauli-trajectory simulator — and the validation of the
fast noise model's locality abstraction against it."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import SimulationError
from repro.noise import NoiseModel
from repro.sim import StatevectorSimulator
from repro.sim.trajectory import PauliTrajectorySimulator


@pytest.fixture
def ghz6():
    qc = QuantumCircuit(6)
    qc.h(0)
    for i in range(5):
        qc.cx(i, i + 1)
    return qc.measure_all()


class TestBasics:
    def test_zero_error_matches_ideal(self, bell):
        sim = PauliTrajectorySimulator(error_1q=0.0, error_2q=0.0, seed=0)
        counts = sim.sample(bell, shots=2000)
        total = sum(counts.values())
        ideal = StatevectorSimulator().ideal_distribution(bell)
        for key, prob in ideal.items():
            assert counts.get(key, 0) / total == pytest.approx(prob, abs=0.05)

    def test_counts_sum_to_shots(self, ghz6):
        sim = PauliTrajectorySimulator(error_2q=0.02, seed=1)
        counts = sim.sample(ghz6, shots=500)
        assert sum(counts.values()) == 500

    def test_errors_reduce_pst(self, ghz6):
        clean = PauliTrajectorySimulator(error_2q=0.0, seed=2)
        noisy = PauliTrajectorySimulator(error_2q=0.08, seed=2)
        clean_counts = clean.sample(ghz6, 1500)
        noisy_counts = noisy.sample(ghz6, 1500)

        def pst(counts):
            total = sum(counts.values())
            return (
                counts.get("000000", 0) + counts.get("111111", 0)
            ) / total

        assert pst(noisy_counts) < pst(clean_counts)

    def test_requires_measurements(self):
        sim = PauliTrajectorySimulator(seed=0)
        with pytest.raises(SimulationError):
            sim.sample(QuantumCircuit(2).h(0), 10)

    def test_invalid_rates(self):
        with pytest.raises(SimulationError):
            PauliTrajectorySimulator(error_1q=1.5)

    def test_pattern_cache_cap(self, ghz6):
        sim = PauliTrajectorySimulator(error_1q=0.5, error_2q=0.5, seed=3)
        with pytest.raises(SimulationError):
            sim.sample(ghz6, shots=5000, max_cached_patterns=4)


class TestLocalityValidation:
    """Grounds the fast model's gate_failure_flip_rate abstraction."""

    def test_corruption_is_local_not_uniform(self, ghz6):
        """Failing trajectories land near ideal outcomes, not uniformly.

        A uniform scramble over 6 bits would give a mean Hamming distance
        of ~3 to the nearest of the two GHZ outcomes; single-Pauli
        trajectories stay well below that.
        """
        sim = PauliTrajectorySimulator(error_2q=0.05, seed=4)
        stats = sim.failure_statistics(ghz6, shots=200)
        assert stats["mean_hamming_distance"] < 2.6

    def test_per_bit_flip_rate_near_fast_model_default(self, ghz6):
        """The fast model's default flip rate sits in the trajectory range."""
        sim = PauliTrajectorySimulator(error_2q=0.05, seed=5)
        stats = sim.failure_statistics(ghz6, shots=300)
        default = NoiseModel.__dataclass_fields__[
            "gate_failure_flip_rate"
        ].default
        # The empirical per-bit corruption of single-gate failures is the
        # same order as the abstraction (within a factor of ~2.5).
        assert 0.4 * stats["per_bit_flip_rate"] < default < 2.5 * stats[
            "per_bit_flip_rate"
        ]

    def test_failure_statistics_fields(self, ghz6):
        sim = PauliTrajectorySimulator(error_2q=0.05, seed=6)
        stats = sim.failure_statistics(ghz6, shots=50)
        assert stats["num_failures"] == 50
        assert 0 <= stats["per_bit_flip_rate"] <= 1
        assert stats["max_hamming_distance"] <= 6
