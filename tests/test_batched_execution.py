"""Property tests for the array-API batched execution spine.

The contract under test: every stacked/batched path — kernels, sampler,
backends, full scheme runs — is **bit-for-bit** identical to the historical
per-circuit oracle kernels (kept alive behind ``exact_reference=True``),
for every scheme, batch composition, and worker count.  No ``allclose``
anywhere: stacking batches only deterministic transforms, so exact
equality is the specification, not an aspiration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.compiler.transpile import transpile
from repro.exceptions import SimulationError
from repro.noise.model import NoiseModel
from repro.noise.sampler import NoisySampler
from repro.runtime import (
    SCHEME_NAMES,
    ExecutionRequest,
    LocalExactBackend,
    LocalSamplingBackend,
    Session,
    ShardedBackend,
)
from repro.sim import kernels
from repro.sim.statevector import StatevectorSimulator
from repro.workloads import ghz
from tests.conftest import make_varied_line_device

# ---------------------------------------------------------------------------
# Shared fixtures
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def device():
    return make_varied_line_device(num_qubits=8)


@pytest.fixture(scope="module")
def noise_model(device):
    return NoiseModel.from_device(device)


@pytest.fixture(scope="module")
def ghz6(device):
    return ghz(6).circuit


@pytest.fixture(scope="module")
def executables(device, ghz6):
    """A mixed-width pool: one 6-bit body plus three 2-bit subsets."""
    return [
        transpile(ghz6, device, seed=0),
        transpile(ghz6.with_measured_subset([0, 1]), device, seed=1),
        transpile(ghz6.with_measured_subset([2, 3]), device, seed=2),
        transpile(ghz6.with_measured_subset([4, 5]), device, seed=3),
    ]


def random_states(rng, batch, num_qubits):
    shape = (batch, 1 << num_qubits)
    state = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    return state.astype(np.complex128)


def assert_code_counts_equal(left, right):
    assert left.num_bits == right.num_bits
    assert left.counts.dtype == np.int64
    assert np.array_equal(left.codes, right.codes)
    assert np.array_equal(left.counts, right.counts)


# ---------------------------------------------------------------------------
# Kernel layer: batched == per-slice, bitwise
# ---------------------------------------------------------------------------


class TestKernelBatching:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        num_qubits=st.integers(1, 4),
        batch=st.integers(1, 5),
        stacked_matrix=st.booleans(),
    )
    def test_apply_gate_batched_matches_slices(
        self, seed, num_qubits, batch, stacked_matrix
    ):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, min(2, num_qubits) + 1))
        qubits = list(
            rng.choice(num_qubits, size=k, replace=False).astype(int)
        )
        dim = 1 << k
        if stacked_matrix:
            matrix = (
                rng.normal(size=(batch, dim, dim))
                + 1j * rng.normal(size=(batch, dim, dim))
            ).astype(np.complex128)
        else:
            matrix = (
                rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
            ).astype(np.complex128)
        states = random_states(rng, batch, num_qubits)
        batched = kernels.apply_gate(states, matrix, qubits, num_qubits)
        assert batched.shape == states.shape
        for b in range(batch):
            single = kernels.apply_gate(
                states[b],
                matrix[b] if stacked_matrix else matrix,
                qubits,
                num_qubits,
            )
            assert np.array_equal(batched[b], single)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        num_bits=st.integers(1, 4),
        batch=st.integers(1, 5),
        stacked_confusions=st.booleans(),
    )
    def test_apply_confusions_batched_matches_rows(
        self, seed, num_bits, batch, stacked_confusions
    ):
        rng = np.random.default_rng(seed)
        probs = rng.random((batch, 1 << num_bits))
        if stacked_confusions:
            confusions = [
                rng.random((batch, 2, 2)) for _ in range(num_bits)
            ]
        else:
            confusions = [rng.random((2, 2)) for _ in range(num_bits)]
        batched = kernels.apply_confusions(probs, confusions)
        for b in range(batch):
            row_confusions = [
                c[b] if stacked_confusions else c for c in confusions
            ]
            single = kernels.apply_confusions(probs[b], row_confusions)
            assert np.array_equal(batched[b], single)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        num_qubits=st.integers(1, 5),
        batch=st.integers(1, 5),
    )
    def test_marginal_probabilities_batched_matches_rows(
        self, seed, num_qubits, batch
    ):
        rng = np.random.default_rng(seed)
        probs = rng.random((batch, 1 << num_qubits))
        keep = sorted(
            rng.choice(
                num_qubits,
                size=int(rng.integers(1, num_qubits + 1)),
                replace=False,
            ).astype(int)
        )
        batched = kernels.marginal_probabilities(probs, keep, num_qubits)
        assert batched.shape == (batch, 1 << len(keep))
        for b in range(batch):
            single = kernels.marginal_probabilities(
                probs[b], keep, num_qubits
            )
            assert np.array_equal(batched[b], single)

    def test_float64_enforced_at_namespace_boundary(self):
        xp = kernels.resolve_namespace("numpy")
        assert kernels.as_float64(xp, np.arange(3, dtype=np.float32)).dtype \
            == np.float64
        assert kernels.as_complex128(
            xp, np.arange(3, dtype=np.complex64)
        ).dtype == np.complex128


# ---------------------------------------------------------------------------
# Stacked statevector evolution
# ---------------------------------------------------------------------------


def parameterised_circuit(num_qubits, params):
    qc = QuantumCircuit(num_qubits)
    for q in range(num_qubits):
        qc.ry(float(params[q]), q)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    for q in range(num_qubits):
        qc.rz(float(params[num_qubits + q]), q)
    return qc


class TestStackedStatevectors:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        num_qubits=st.integers(2, 5),
        batch=st.integers(1, 6),
    )
    def test_bind_many_stack_matches_per_circuit(
        self, seed, num_qubits, batch
    ):
        rng = np.random.default_rng(seed)
        circuits = [
            parameterised_circuit(
                num_qubits, rng.uniform(0, 2 * np.pi, 2 * num_qubits)
            )
            for _ in range(batch)
        ]
        sim = StatevectorSimulator()
        stacked = sim.statevectors_stacked(circuits)
        assert stacked.dtype == np.complex128
        assert stacked.shape == (batch, 1 << num_qubits)
        for b, circuit in enumerate(circuits):
            assert np.array_equal(stacked[b], sim.statevector(circuit))
        stacked_probs = sim.probabilities_stacked(circuits)
        assert stacked_probs.dtype == np.float64
        for b, circuit in enumerate(circuits):
            assert np.array_equal(
                stacked_probs[b], sim.probabilities(circuit)
            )

    def test_mixed_structures_rejected(self):
        sim = StatevectorSimulator()
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).h(0).cx(1, 0)
        with pytest.raises(SimulationError):
            sim.statevectors_stacked([a, b])

    def test_structure_key_separates_topology_not_parameters(self):
        a = parameterised_circuit(3, np.linspace(0.1, 0.6, 6))
        b = parameterised_circuit(3, np.linspace(0.7, 1.2, 6))
        c = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        assert kernels.structure_key(a) == kernels.structure_key(b)
        assert kernels.structure_key(a) != kernels.structure_key(c)


# ---------------------------------------------------------------------------
# Qubit cap (shared, configurable) and namespace resolution
# ---------------------------------------------------------------------------


class TestQubitCapAndNamespaces:
    def test_env_overrides_default_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_QUBITS", "5")
        assert StatevectorSimulator().max_qubits == 5

    def test_explicit_cap_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_QUBITS", "5")
        assert StatevectorSimulator(max_qubits=12).max_qubits == 12

    def test_cap_error_reports_memory_estimate(self):
        sim = StatevectorSimulator(max_qubits=3)
        with pytest.raises(SimulationError) as excinfo:
            sim.statevector(QuantumCircuit(4).h(0))
        message = str(excinfo.value)
        assert "4" in message and "max_qubits" in message
        # 2**4 amplitudes x 16 bytes.
        assert "256" in message

    @pytest.mark.parametrize("bad", [0, -1, True, 2.5, "ten"])
    def test_invalid_caps_rejected(self, bad):
        with pytest.raises(SimulationError):
            kernels.validate_max_qubits(bad)

    def test_state_memory_bytes(self):
        assert kernels.state_memory_bytes(10) == 16 * 1024
        assert kernels.state_memory_bytes(5, amplitude_exponent=2) \
            == 16 * 1024

    def test_resolve_namespace_aliases(self):
        assert kernels.resolve_namespace("numpy") is \
            kernels.resolve_namespace("np")
        assert kernels.namespace_name(
            kernels.resolve_namespace(None)
        ).startswith("numpy")

    def test_resolve_namespace_unknown_module(self):
        with pytest.raises(SimulationError):
            kernels.resolve_namespace("no_such_array_module")

    def test_env_selects_default_namespace(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_API", "numpy")
        xp = kernels.resolve_namespace(None)
        assert kernels.namespace_name(xp).startswith("numpy")

    def test_set_default_namespace_round_trip(self):
        try:
            kernels.set_default_namespace("numpy")
            assert kernels.namespace_name(
                kernels.resolve_namespace(None)
            ).startswith("numpy")
        finally:
            kernels.set_default_namespace(None)


# ---------------------------------------------------------------------------
# Sampler layer: stacked twins == oracle, bitwise
# ---------------------------------------------------------------------------


class TestSamplerStacking:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        shots_list=st.lists(st.integers(1, 4_000), min_size=1, max_size=5),
        chunk_shots=st.sampled_from([257, 1_000, 1_000_000]),
    )
    def test_sample_group_codes_matches_run_many_codes(
        self, noise_model, executables, seed, shots_list, chunk_shots
    ):
        sampler = NoisySampler(
            noise_model, seed=0, chunk_shots=chunk_shots
        )
        oracle = sampler.run_many_codes(
            executables[0], shots_list, rng=np.random.default_rng(seed)
        )
        stacked = sampler.sample_group_codes(
            executables[0], shots_list, rng=np.random.default_rng(seed)
        )
        assert len(stacked) == len(oracle)
        for left, right in zip(stacked, oracle):
            assert_code_counts_equal(left, right)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        size=st.integers(1, 8),
    )
    def test_exact_group_distributions_matches_oracle(
        self, noise_model, executables, seed, size
    ):
        # Random batch compositions: repeats and mixed widths included.
        rng = np.random.default_rng(seed)
        batch = [
            executables[i]
            for i in rng.integers(0, len(executables), size=size)
        ]
        sampler = NoisySampler(noise_model, seed=0)
        stacked = sampler.exact_group_distributions(batch)
        assert len(stacked) == len(batch)
        for executable, (codes, probs, k) in zip(batch, stacked):
            ref_codes, ref_probs, ref_k = sampler.exact_distribution_arrays(
                executable
            )
            assert k == ref_k
            assert codes.dtype == np.int64
            assert np.array_equal(codes, ref_codes)
            assert np.array_equal(probs, ref_probs)


# ---------------------------------------------------------------------------
# Backend layer: stacked spine == exact_reference oracle at any worker count
# ---------------------------------------------------------------------------


def make_requests(executables, trials=400):
    # Duplicates so coalescing and stacking both engage.
    return [ExecutionRequest(e, trials) for e in executables] * 2


class TestBackendOracleEquality:
    def test_exact_stacked_matches_reference_across_workers(
        self, noise_model, executables
    ):
        requests = make_requests(executables)
        reference_backend = LocalExactBackend(
            noise_model=noise_model, exact_reference=True
        )
        reference = [
            p.as_dict() for p in reference_backend.execute(requests)
        ]
        assert reference_backend.stacked_evals == 0

        serial = LocalExactBackend(noise_model=noise_model)
        assert [p.as_dict() for p in serial.execute(requests)] == reference

        for workers in (1, 2, 4):
            backend = ShardedBackend(
                LocalExactBackend(noise_model=noise_model), workers=workers
            )
            assert [
                p.as_dict() for p in backend.execute(requests)
            ] == reference, workers
            stats = backend.stats()
            # Stacking engages whenever a shard holds several same-width
            # groups; at workers=4 the four coalesced groups land one per
            # shard, so there is nothing left to stack — equality above is
            # the invariant, stacking the optimisation.
            if workers < 4:
                assert stats["stacked_evals"] >= 1, workers
                assert stats["stacked_circuits"] > stats["stacked_evals"]
            assert stats["shards"] >= 1
            # Coalescing still collapses the duplicated batch.
            assert stats["channel_evals"] == len(requests) // 2

    def test_exact_reference_escape_hatch_disables_stacking(
        self, noise_model, executables
    ):
        requests = make_requests(executables)
        backend = ShardedBackend(
            LocalExactBackend(
                noise_model=noise_model, exact_reference=True
            ),
            workers=2,
        )
        reference = LocalExactBackend(
            noise_model=noise_model, exact_reference=True
        ).execute(requests)
        assert [p.as_dict() for p in backend.execute(requests)] == [
            p.as_dict() for p in reference
        ]
        assert backend.stats()["stacked_evals"] == 0

    def test_sampled_stacked_matches_reference_across_workers(
        self, noise_model, executables
    ):
        requests = make_requests(executables, trials=300)
        reference = [
            p.as_dict()
            for p in LocalSamplingBackend(
                noise_model=noise_model, seed=11, exact_reference=True
            ).execute(requests)
        ]
        assert [
            p.as_dict()
            for p in LocalSamplingBackend(
                noise_model=noise_model, seed=11
            ).execute(requests)
        ] == reference
        for workers in (1, 4):
            backend = ShardedBackend(
                LocalSamplingBackend(noise_model=noise_model, seed=11),
                workers=workers,
            )
            assert [
                p.as_dict() for p in backend.execute(requests)
            ] == reference, workers

    def test_env_default_escape_hatch(self, noise_model, monkeypatch):
        monkeypatch.setenv("REPRO_EXACT_REFERENCE", "1")
        assert LocalExactBackend(noise_model=noise_model).exact_reference
        monkeypatch.delenv("REPRO_EXACT_REFERENCE")
        assert not LocalExactBackend(noise_model=noise_model).exact_reference


# ---------------------------------------------------------------------------
# Scheme layer: all 7 schemes, exact + sampled, stacked == oracle
# ---------------------------------------------------------------------------


def run_all_schemes(device, workload, exact, workers):
    session = Session(
        device,
        seed=7,
        total_trials=2_048,
        exact=exact,
        compile_attempts=2,
        cpm_attempts=1,
        ensemble_size=2,
        workers=workers,
    )
    return {
        scheme: session.run_scheme(scheme, workload).as_dict()
        for scheme in SCHEME_NAMES
    }


class TestSchemeOracleEquality:
    @pytest.mark.parametrize("exact", [True, False])
    def test_all_schemes_bitforbit_vs_oracle_across_workers(
        self, device, exact, monkeypatch
    ):
        workload = ghz(5)
        monkeypatch.setenv("REPRO_EXACT_REFERENCE", "1")
        oracle = run_all_schemes(device, workload, exact, workers=None)
        monkeypatch.delenv("REPRO_EXACT_REFERENCE")
        for workers in (None, 2):
            stacked = run_all_schemes(device, workload, exact, workers)
            assert stacked == oracle, (exact, workers)


# ---------------------------------------------------------------------------
# Optional strict leg: exact paths on an array-api-strict namespace
# ---------------------------------------------------------------------------


class TestArrayApiStrict:
    def test_exact_group_distributions_on_strict_namespace(
        self, noise_model, executables
    ):
        pytest.importorskip("array_api_strict")
        sampler = NoisySampler(noise_model, seed=0)
        stacked = sampler.exact_group_distributions(
            executables * 2, xp="array_api_strict"
        )
        for executable, (codes, probs, k) in zip(executables * 2, stacked):
            ref_codes, ref_probs, ref_k = sampler.exact_distribution_arrays(
                executable
            )
            assert k == ref_k
            assert np.array_equal(codes, ref_codes)
            assert np.allclose(probs, ref_probs, rtol=0, atol=1e-15)

    def test_apply_gate_on_strict_namespace(self):
        xp = pytest.importorskip("array_api_strict")
        rng = np.random.default_rng(0)
        states = random_states(rng, 3, 3)
        matrix = (
            rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        ).astype(np.complex128)
        strict = kernels.apply_gate(
            xp.asarray(states), xp.asarray(matrix), [1], 3, xp=xp
        )
        reference = kernels.apply_gate(states, matrix, [1], 3)
        assert np.array_equal(kernels.asnumpy(strict), reference)
