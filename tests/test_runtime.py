"""Tests for the runtime layer: backends, plans, fingerprints, cache."""

import pickle

import pytest

from repro.compiler.transpile import (
    reset_transpile_call_count,
    transpile,
    transpile_call_count,
)
from repro.core import JigSaw, JigSawConfig, JigSawM, JigSawMConfig
from repro.exceptions import ReconstructionError, SimulationError
from repro.noise.model import NoiseModel
from repro.noise.sampler import NoisySampler
from repro.runtime import (
    CompilationCache,
    ExecutionRequest,
    LocalExactBackend,
    LocalSamplingBackend,
    circuit_fingerprint,
    config_fingerprint,
    executable_fingerprint,
    unitary_body_fingerprint,
)
from repro.workloads import ghz
from tests.conftest import make_varied_line_device


@pytest.fixture(scope="module")
def device():
    return make_varied_line_device(num_qubits=8)


@pytest.fixture(scope="module")
def noise_model(device):
    return NoiseModel.from_device(device)


@pytest.fixture(scope="module")
def ghz6():
    return ghz(6).circuit


class TestFingerprints:
    def test_stable_across_builds(self):
        a, b = ghz(5).circuit, ghz(5).circuit
        assert circuit_fingerprint(a) == circuit_fingerprint(b)

    def test_name_does_not_matter(self):
        a, b = ghz(5).circuit, ghz(5).circuit
        b.name = "renamed"
        assert circuit_fingerprint(a) == circuit_fingerprint(b)

    def test_instruction_change_changes_fingerprint(self):
        a, b = ghz(5).circuit, ghz(5).circuit
        b.x(0)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_unitary_body_shared_by_cpms(self, ghz6):
        cpm = ghz6.with_measured_subset([0, 1])
        assert unitary_body_fingerprint(ghz6) == unitary_body_fingerprint(cpm)
        assert circuit_fingerprint(ghz6) != circuit_fingerprint(cpm)

    def test_config_fingerprint_distinguishes_values_and_classes(self):
        assert config_fingerprint(JigSawConfig()) != config_fingerprint(
            JigSawConfig(recompile_cpms=False)
        )
        assert config_fingerprint(JigSawConfig()) != config_fingerprint(
            JigSawMConfig()
        )

    def test_executable_fingerprint_deterministic(self, device, ghz6):
        a = transpile(ghz6, device, seed=3)
        b = transpile(ghz6, device, seed=3)
        assert executable_fingerprint(a) == executable_fingerprint(b)


class TestBackends:
    def test_exact_matches_sampler_closed_form(self, device, noise_model, ghz6):
        executable = transpile(ghz6, device, seed=0)
        backend = LocalExactBackend(noise_model=noise_model)
        (pmf,) = backend.execute([ExecutionRequest(executable, 1024)])
        expected = NoisySampler(noise_model).exact_distribution(executable)
        assert pmf.as_dict() == pytest.approx(expected)

    def test_sampling_bitforbit_with_per_request_streams(
        self, device, noise_model, ghz6
    ):
        # The batch seed discipline: one child stream per request index,
        # spawned off the sampler stream before any evaluation.  This is
        # what makes sharded execution bit-for-bit equal to serial.
        executable = transpile(ghz6, device, seed=0)
        cpm = transpile(ghz6.with_measured_subset([0, 1]), device, seed=1)
        requests = [
            ExecutionRequest(executable, 500),
            ExecutionRequest(cpm, 300),
        ]
        backend = LocalSamplingBackend(noise_model=noise_model, seed=7)
        batch = backend.execute(requests)

        reference_sampler = NoisySampler(noise_model, seed=7)
        streams = reference_sampler.spawn_streams(len(requests))
        for request, pmf, stream in zip(requests, batch, streams):
            counts = reference_sampler.run(
                request.executable, request.trials, rng=stream
            )
            total = sum(counts.values())
            expected = {k: v / total for k, v in counts.items()}
            assert pmf.as_dict() == pytest.approx(expected)

    def test_sampling_request_streams_independent_of_batch_shape(
        self, device, noise_model, ghz6
    ):
        # Request i's draws depend on its batch position only: executing
        # [a, b] yields the same PMF for a as executing [a, c].
        a = transpile(ghz6, device, seed=0)
        b = transpile(ghz6.with_measured_subset([0, 1]), device, seed=1)
        c = transpile(ghz6.with_measured_subset([2, 3]), device, seed=2)
        first = LocalSamplingBackend(noise_model=noise_model, seed=9).execute(
            [ExecutionRequest(a, 400), ExecutionRequest(b, 200)]
        )
        second = LocalSamplingBackend(noise_model=noise_model, seed=9).execute(
            [ExecutionRequest(a, 400), ExecutionRequest(c, 200)]
        )
        assert first[0].as_dict() == second[0].as_dict()

    def test_one_statevector_per_unitary_body(self, device, noise_model, ghz6):
        executables = [
            transpile(ghz6, device, seed=0),
            transpile(ghz6.with_measured_subset([0, 1]), device, seed=1),
            transpile(ghz6.with_measured_subset([2, 3]), device, seed=2),
        ]
        requests = [ExecutionRequest(e, 64) for e in executables]
        simulated = LocalExactBackend.share_statevectors(requests)
        assert simulated == 1  # one body across global + both CPMs
        first = executables[0]._ideal_probabilities
        for executable in executables[1:]:
            assert executable._ideal_probabilities is first

    def test_share_skips_preshared(self, device, noise_model, ghz6):
        executable = transpile(ghz6, device, seed=0)
        executable.ideal_probabilities()  # populate
        assert (
            LocalExactBackend.share_statevectors(
                [ExecutionRequest(executable, 64)]
            )
            == 0
        )

    def test_rejects_negative_trials(self, device, ghz6):
        executable = transpile(ghz6, device, seed=0)
        with pytest.raises(SimulationError):
            ExecutionRequest(executable, -1)

    def test_zero_trials_ok_in_exact_mode(self, device, noise_model, ghz6):
        # A starved allocation (e.g. extreme global_fraction) must not
        # crash exact mode, which ignores trial counts.
        executable = transpile(ghz6, device, seed=0)
        backend = LocalExactBackend(noise_model=noise_model)
        (pmf,) = backend.execute([ExecutionRequest(executable, 0)])
        assert pmf.num_bits == 6
        sampling = LocalSamplingBackend(noise_model=noise_model, seed=1)
        with pytest.raises(SimulationError):
            sampling.execute([ExecutionRequest(executable, 0)])


class TestExecutionPlan:
    def test_plan_contents(self, device, ghz6):
        jigsaw = JigSaw(device, JigSawConfig(exact=True), seed=5)
        plan = jigsaw.plan(ghz6, total_trials=16_384)
        assert plan.scheme == "jigsaw"
        assert plan.device_name == device.name
        assert plan.num_cpms == 6
        assert len(plan.layers) == 1
        assert plan.allocated_trials == 16_384
        requests = plan.requests()
        assert len(requests) == 7
        assert requests[0].trials == plan.global_trials

    def test_plan_execute_equals_run(self, device, ghz6):
        a = JigSaw(device, JigSawConfig(exact=True), seed=5)
        b = JigSaw(device, JigSawConfig(exact=True), seed=5)
        via_run = a.run(ghz6, total_trials=16_384)
        via_plan = b.execute(b.plan(ghz6, total_trials=16_384))
        assert via_run.output_pmf.as_dict() == pytest.approx(
            via_plan.output_pmf.as_dict()
        )

    def test_with_trials_rebudgets_without_recompiling(self, device, ghz6):
        jigsaw = JigSaw(device, JigSawConfig(exact=True), seed=5)
        plan = jigsaw.plan(ghz6, total_trials=16_384)
        rebudgeted = plan.with_trials(
            32_768, *jigsaw.split_trials(32_768, plan.num_cpms)
        )
        assert rebudgeted.total_trials == 32_768
        assert rebudgeted.allocated_trials == 32_768
        assert rebudgeted.cpm_executables == plan.cpm_executables

    def test_with_trials_rejects_leaky_split(self, device, ghz6):
        jigsaw = JigSaw(device, JigSawConfig(exact=True), seed=5)
        plan = jigsaw.plan(ghz6, total_trials=16_384)
        with pytest.raises(ReconstructionError):
            plan.with_trials(100, 10, 10)

    def test_to_dict_and_describe(self, device, ghz6):
        jigsaw = JigSaw(device, JigSawConfig(exact=True), seed=5)
        plan = jigsaw.plan(ghz6, total_trials=16_384)
        summary = plan.to_dict()
        assert summary["scheme"] == "jigsaw"
        assert summary["num_cpms"] == 6
        assert len(summary["layers"][0]["subsets"]) == 6
        assert "6 CPMs" in plan.describe()

    def test_plan_pickles(self, device, ghz6):
        jigsaw = JigSaw(device, JigSawConfig(exact=True), seed=5)
        plan = jigsaw.plan(ghz6, total_trials=16_384)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.circuit_fingerprint == plan.circuit_fingerprint
        assert clone.num_cpms == plan.num_cpms

    def test_jigsawm_plan_layers_ascending(self, device, ghz6):
        runner = JigSawM(device, JigSawMConfig(exact=True), seed=5)
        plan = runner.plan(ghz6, total_trials=16_384)
        assert plan.scheme == "jigsaw_m"
        sizes = [layer.subset_size for layer in plan.layers]
        assert sizes == sorted(sizes)
        assert sizes[0] == 2

    def test_scheme_mismatch_rejected(self, device, ghz6):
        jigsaw = JigSaw(device, JigSawConfig(exact=True), seed=5)
        jigsaw_m = JigSawM(device, JigSawMConfig(exact=True), seed=5)
        plan = jigsaw.plan(ghz6, total_trials=16_384)
        with pytest.raises(ReconstructionError):
            jigsaw_m.execute(plan)


class TestCompilationCache:
    def test_hit_returns_same_executables(self, device, ghz6):
        cache = CompilationCache()
        first = JigSaw(device, JigSawConfig(exact=True), seed=5, cache=cache)
        again = JigSaw(device, JigSawConfig(exact=True), seed=5, cache=cache)
        plan_a = first.plan(ghz6, total_trials=16_384)
        plan_b = again.plan(ghz6, total_trials=16_384)
        assert cache.hits == 1 and cache.misses == 1
        assert plan_b.cpm_executables == plan_a.cpm_executables

    def test_hit_avoids_transpile_calls(self, device, ghz6):
        cache = CompilationCache()
        JigSaw(device, JigSawConfig(exact=True), seed=5, cache=cache).plan(
            ghz6, total_trials=16_384
        )
        reset_transpile_call_count()
        JigSaw(device, JigSawConfig(exact=True), seed=5, cache=cache).plan(
            ghz6, total_trials=16_384
        )
        assert transpile_call_count() == 0

    def test_hit_result_identical_to_miss(self, device, ghz6):
        cache = CompilationCache()
        uncached = JigSaw(device, JigSawConfig(exact=True), seed=5).run(
            ghz6, total_trials=16_384
        )
        JigSaw(device, JigSawConfig(exact=True), seed=5, cache=cache).plan(
            ghz6, total_trials=16_384
        )
        cached = JigSaw(
            device, JigSawConfig(exact=True), seed=5, cache=cache
        ).run(ghz6, total_trials=16_384)
        assert cache.hits == 1
        assert cached.output_pmf.as_dict() == pytest.approx(
            uncached.output_pmf.as_dict()
        )

    def test_execution_knobs_do_not_defeat_cache(self, device, ghz6):
        # tolerance/max_rounds/exact/compile_workers cannot change the
        # compiled artifact, so sweeps over them must hit.
        cache = CompilationCache()
        JigSaw(device, JigSawConfig(exact=True), seed=5, cache=cache).plan(
            ghz6, total_trials=16_384
        )
        swept = JigSaw(
            device,
            JigSawConfig(
                exact=False, tolerance=0.5, max_rounds=3, compile_workers=2
            ),
            seed=5,
            cache=cache,
        ).plan(ghz6, total_trials=16_384)
        assert cache.hits == 1
        # The hit carries the *current* runner's config snapshot.
        assert swept.config.tolerance == 0.5
        assert swept.config.exact is False

    def test_different_config_misses(self, device, ghz6):
        cache = CompilationCache()
        JigSaw(device, JigSawConfig(exact=True), seed=5, cache=cache).plan(
            ghz6, total_trials=16_384
        )
        JigSaw(
            device,
            JigSawConfig(exact=True, recompile_cpms=False),
            seed=5,
            cache=cache,
        ).plan(ghz6, total_trials=16_384)
        assert cache.hits == 0 and cache.misses == 2

    def test_random_subsets_never_cached(self, device, ghz6):
        cache = CompilationCache()
        config = JigSawConfig(exact=True, subset_method="random")
        JigSaw(device, config, seed=5, cache=cache).plan(ghz6, 16_384)
        assert len(cache) == 0 and cache.misses == 0

    def test_disabled_cache_stores_nothing(self, device, ghz6):
        cache = CompilationCache.disabled()
        for _ in range(2):
            JigSaw(device, JigSawConfig(exact=True), seed=5, cache=cache).plan(
                ghz6, total_trials=16_384
            )
        assert cache.hits == 0 and cache.misses == 2 and len(cache) == 0

    def test_lru_eviction(self, device):
        cache = CompilationCache(max_entries=1)
        config = JigSawConfig(exact=True)
        JigSaw(device, config, seed=5, cache=cache).plan(
            ghz(5).circuit, 16_384
        )
        JigSaw(device, config, seed=5, cache=cache).plan(
            ghz(6).circuit, 16_384
        )
        assert len(cache) == 1
        # The GHZ-5 plan was evicted: planning it again misses.
        JigSaw(device, config, seed=5, cache=cache).plan(
            ghz(5).circuit, 16_384
        )
        assert cache.hits == 0 and cache.misses == 3

    def test_make_key_escapes_separator(self):
        # Regression: components containing "|" used to collide — two
        # different part tuples could map to one cache key.
        assert CompilationCache.make_key(
            ("a|b", "c")
        ) != CompilationCache.make_key(("a", "b|c"))
        assert CompilationCache.make_key(
            ("a\\", "|b")
        ) != CompilationCache.make_key(("a", "\\|b"))

    def test_make_key_injective_over_part_tuples(self):
        parts = [
            ("a", "b", "c"),
            ("a|b", "c"),
            ("a", "b|c"),
            ("a\\|b", "c"),
            ("a\\", "b", "c"),
            ("a", "b\\", "c"),
            ("a|b|c",),
        ]
        keys = {CompilationCache.make_key(p) for p in parts}
        assert len(keys) == len(parts)

    def test_make_key_plain_parts_unchanged(self):
        # Fingerprints/device names contain neither "|" nor "\\"; their
        # keys keep the historical readable format.
        assert CompilationCache.make_key(("jigsaw", "abc123")) == "jigsaw|abc123"

    def test_rebudget_on_hit(self, device, ghz6):
        cache = CompilationCache()
        JigSaw(device, JigSawConfig(exact=True), seed=5, cache=cache).plan(
            ghz6, total_trials=16_384
        )
        plan = JigSaw(
            device, JigSawConfig(exact=True), seed=5, cache=cache
        ).plan(ghz6, total_trials=32_768)
        assert cache.hits == 1
        assert plan.total_trials == 32_768
        assert plan.allocated_trials == 32_768


class TestParallelCompile:
    def test_thread_fanout_bit_identical(self, device, ghz6):
        serial = JigSaw(device, JigSawConfig(exact=True), seed=5)
        threaded = JigSaw(
            device, JigSawConfig(exact=True, compile_workers=4), seed=5
        )
        plan_s = serial.plan(ghz6, total_trials=16_384)
        plan_t = threaded.plan(ghz6, total_trials=16_384)
        for a, b in zip(plan_s.cpm_executables, plan_t.cpm_executables):
            assert executable_fingerprint(a) == executable_fingerprint(b)
        result_s = serial.execute(plan_s)
        result_t = threaded.execute(plan_t)
        assert result_s.output_pmf.as_dict() == pytest.approx(
            result_t.output_pmf.as_dict()
        )
