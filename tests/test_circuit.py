"""Unit tests for the QuantumCircuit IR."""

import pytest

from repro.circuits import Gate, Instruction, QuantumCircuit
from repro.exceptions import CircuitError


class TestInstruction:
    def test_gate_instruction(self):
        ins = Instruction("gate", Gate("cx"), (0, 1))
        assert ins.is_gate and ins.is_two_qubit_gate and not ins.is_measure

    def test_measure_instruction(self):
        ins = Instruction("measure", None, (2,), (0,))
        assert ins.is_measure

    def test_gate_requires_gate_object(self):
        with pytest.raises(CircuitError):
            Instruction("gate", None, (0,))

    def test_gate_arity_mismatch(self):
        with pytest.raises(CircuitError):
            Instruction("gate", Gate("cx"), (0,))

    def test_measure_clbit_count(self):
        with pytest.raises(CircuitError):
            Instruction("measure", None, (0, 1), (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Instruction("gate", Gate("cx"), (1, 1))

    def test_unknown_kind(self):
        with pytest.raises(CircuitError):
            Instruction("reset", None, (0,))

    def test_remap(self):
        ins = Instruction("gate", Gate("cx"), (0, 1))
        remapped = ins.remap({0: 5, 1: 3})
        assert remapped.qubits == (5, 3)


class TestConstruction:
    def test_default_clbits_match_qubits(self):
        assert QuantumCircuit(3).num_clbits == 3

    def test_zero_qubits_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_builder_chaining(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).measure_all()
        assert len(qc) == 4

    def test_qubit_range_checked(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).h(2)

    def test_clbit_range_checked(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2, 1).measure(0, 1)

    def test_all_gate_builders(self):
        qc = QuantumCircuit(3)
        qc.id(0).x(0).y(0).z(0).h(0).s(0).sdg(0).t(0).tdg(0).sx(0)
        qc.rx(0.1, 0).ry(0.2, 0).rz(0.3, 0).p(0.4, 0).u3(0.1, 0.2, 0.3, 0)
        qc.cx(0, 1).cz(0, 1).swap(0, 1).rzz(0.5, 0, 1).cp(0.6, 0, 1)
        qc.ccx(0, 1, 2)
        assert len(qc) == 21

    def test_measure_all_requires_enough_clbits(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(3, 2).measure_all()


class TestQueries:
    def test_measurement_map(self, ghz4):
        assert ghz4.measurement_map == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_measured_qubits_order(self):
        qc = QuantumCircuit(3, 2).measure(2, 0).measure(0, 1)
        assert qc.measured_qubits == (2, 0)

    def test_count_ops(self, ghz4):
        ops = ghz4.count_ops()
        assert ops == {"h": 1, "cx": 3, "measure": 4}

    def test_gate_counts(self, ghz4):
        assert ghz4.num_two_qubit_gates() == 3
        assert ghz4.num_single_qubit_gates() == 1

    def test_depth_linear_chain(self, ghz4):
        # h, cx, cx, cx, measures: depth = 1 + 3 + 1 = 5
        assert ghz4.depth() == 5

    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(4).h(0).h(1).h(2).h(3)
        assert qc.depth() == 1

    def test_barrier_not_counted_in_depth(self):
        qc = QuantumCircuit(2).h(0).barrier().h(0)
        assert qc.depth() == 2

    def test_active_qubits(self):
        qc = QuantumCircuit(5).h(1).cx(1, 3)
        assert qc.active_qubits() == (1, 3)


class TestTransformations:
    def test_copy_is_independent(self, ghz4):
        clone = ghz4.copy()
        clone.x(0)
        assert len(clone) == len(ghz4) + 1

    def test_compose(self):
        a = QuantumCircuit(2).h(0)
        b = QuantumCircuit(2).cx(0, 1)
        combined = a.compose(b)
        assert [i.gate.name for i in combined.gates()] == ["h", "cx"]

    def test_compose_size_mismatch(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).compose(QuantumCircuit(3))

    def test_inverse_reverses_and_inverts(self):
        qc = QuantumCircuit(2).h(0).s(0).cx(0, 1)
        inv = qc.inverse()
        names = [i.gate.name for i in inv.gates()]
        assert names == ["cx", "sdg", "h"]

    def test_inverse_rejects_measurements(self, ghz4):
        with pytest.raises(CircuitError):
            ghz4.inverse()

    def test_remove_measurements(self, ghz4):
        stripped = ghz4.remove_measurements()
        assert stripped.num_measurements == 0
        assert len(stripped.gates()) == len(ghz4.gates())

    def test_remap_qubits(self):
        qc = QuantumCircuit(2).cx(0, 1).measure(0, 0)
        remapped = qc.remap_qubits({0: 4, 1: 2}, num_qubits=5)
        assert remapped.instructions[0].qubits == (4, 2)
        assert remapped.instructions[1].qubits == (4,)
        assert remapped.instructions[1].clbits == (0,)


class TestWithMeasuredSubset:
    def test_cpm_keeps_body_changes_measurements(self, ghz4):
        cpm = ghz4.with_measured_subset([1, 3])
        assert len(cpm.gates()) == len(ghz4.gates())
        assert cpm.measured_qubits == (1, 3)
        assert cpm.measurement_map == {1: 0, 3: 1}
        assert cpm.num_clbits == 2

    def test_cpm_sorts_subset(self, ghz4):
        cpm = ghz4.with_measured_subset([3, 0])
        assert cpm.measured_qubits == (0, 3)

    def test_cpm_rejects_empty(self, ghz4):
        with pytest.raises(CircuitError):
            ghz4.with_measured_subset([])

    def test_cpm_rejects_out_of_range(self, ghz4):
        with pytest.raises(CircuitError):
            ghz4.with_measured_subset([7])

    def test_cpm_is_paper_example(self):
        """§4.2.1: a CPM is the original program with fewer measurements."""
        qc = QuantumCircuit(4, name="bv4")
        qc.h(0).h(1).h(2).x(3).h(3)
        qc.cx(0, 3).cx(1, 3).cx(2, 3)
        qc.measure(0, 0)
        qc.measure(1, 1)
        qc.measure(2, 2)
        cpm = qc.with_measured_subset([0, 1])
        assert cpm.count_ops()["measure"] == 2
        assert cpm.count_ops()["cx"] == 3


class TestEquality:
    def test_equal_circuits(self):
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).h(0).cx(0, 1)
        assert a == b

    def test_different_instructions(self):
        assert QuantumCircuit(2).h(0) != QuantumCircuit(2).x(0)
