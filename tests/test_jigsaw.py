"""End-to-end tests for the JigSaw and JigSaw-M runners."""

import pytest

from repro.circuits import QuantumCircuit
from repro.core import (
    JigSaw,
    JigSawConfig,
    JigSawM,
    JigSawMConfig,
    measured_positions_map,
)
from repro.exceptions import ReconstructionError
from repro.metrics import probability_of_successful_trial
from tests.conftest import make_line_device, make_varied_line_device


@pytest.fixture
def device():
    return make_varied_line_device(num_qubits=8)


@pytest.fixture
def ghz6():
    qc = QuantumCircuit(6, name="ghz6")
    qc.h(0)
    for i in range(5):
        qc.cx(i, i + 1)
    return qc.measure_all()


CORRECT6 = ("000000", "111111")


class TestConfig:
    def test_defaults_follow_paper(self):
        config = JigSawConfig()
        assert config.subset_size == 2
        assert config.global_fraction == 0.5
        assert config.recompile_cpms is True

    def test_invalid_fraction(self):
        with pytest.raises(ReconstructionError):
            JigSawConfig(global_fraction=1.0)

    def test_invalid_method(self):
        with pytest.raises(ReconstructionError):
            JigSawConfig(subset_method="fancy")

    def test_jigsawm_size_validation(self):
        with pytest.raises(ReconstructionError):
            JigSawMConfig(min_subset_size=1)
        with pytest.raises(ReconstructionError):
            JigSawMConfig(min_subset_size=4, max_subset_size=3)

    def test_jigsawm_sizes_clipped_to_program(self):
        config = JigSawMConfig(min_subset_size=2, max_subset_size=5)
        assert config.sizes_for(4) == [2, 3]
        assert config.sizes_for(10) == [2, 3, 4, 5]


class TestMeasuredPositions:
    def test_monotone_map_accepted(self, ghz6):
        assert measured_positions_map(ghz6) == {q: q for q in range(6)}

    def test_non_monotone_rejected(self):
        qc = QuantumCircuit(3, 3).h(0)
        qc.measure(0, 2)
        qc.measure(1, 1)
        qc.measure(2, 0)
        with pytest.raises(ReconstructionError):
            measured_positions_map(qc)

    def test_too_few_measurements_rejected(self):
        qc = QuantumCircuit(2, 1).h(0).measure(0, 0)
        with pytest.raises(ReconstructionError):
            measured_positions_map(qc)


class TestPlanning:
    def test_sliding_subsets_default(self, device, ghz6):
        jigsaw = JigSaw(device, seed=0)
        subsets = jigsaw.generate_subsets(ghz6)
        assert len(subsets) == 6
        assert all(len(s) == 2 for s in subsets)

    def test_explicit_subsets(self, device, ghz6):
        jigsaw = JigSaw(device, seed=0)
        subsets = jigsaw.generate_subsets(ghz6, subsets=[(0, 5), (2, 3)])
        assert subsets == [(0, 5), (2, 3)]

    def test_random_method(self, device, ghz6):
        config = JigSawConfig(subset_method="random", num_subsets=6)
        jigsaw = JigSaw(device, config, seed=0)
        subsets = jigsaw.generate_subsets(ghz6)
        assert len(subsets) == 6
        covered = {q for s in subsets for q in s}
        assert covered == set(range(6))

    def test_split_trials_even(self, device):
        jigsaw = JigSaw(device, seed=0)
        global_trials, per_cpm = jigsaw.split_trials(32_768, 8)
        assert global_trials == 16_384
        assert per_cpm == 2_048

    def test_split_trials_too_few(self, device):
        jigsaw = JigSaw(device, seed=0)
        with pytest.raises(ReconstructionError):
            jigsaw.split_trials(4, 8)


class TestJigSawEndToEnd:
    def test_improves_pst_exact(self, device, ghz6):
        jigsaw = JigSaw(device, JigSawConfig(exact=True), seed=5)
        result = jigsaw.run(ghz6, total_trials=16_384)
        base = probability_of_successful_trial(result.global_pmf, CORRECT6)
        out = probability_of_successful_trial(result.output_pmf, CORRECT6)
        assert out > base

    def test_improves_pst_sampled(self, device, ghz6):
        jigsaw = JigSaw(device, JigSawConfig(exact=False), seed=5)
        result = jigsaw.run(ghz6, total_trials=32_768)
        base = probability_of_successful_trial(result.global_pmf, CORRECT6)
        out = probability_of_successful_trial(result.output_pmf, CORRECT6)
        assert out > base

    def test_result_bookkeeping(self, device, ghz6):
        jigsaw = JigSaw(device, JigSawConfig(exact=True), seed=5)
        result = jigsaw.run(ghz6, total_trials=16_384)
        assert len(result.cpm_executables) == 6
        assert len(result.marginals) == 6
        # 8192 // 6 leaves 2 remainder trials; they fold into global mode
        # so the whole budget is spent.
        assert result.global_trials == 8_194
        assert result.total_trials == 16_384
        for marginal, subset in zip(result.marginals, result.subsets):
            assert marginal.qubits == subset

    def test_cpms_measure_declared_subsets(self, device, ghz6):
        jigsaw = JigSaw(device, JigSawConfig(exact=True), seed=5)
        result = jigsaw.run(ghz6, total_trials=16_384)
        for subset, executable in zip(result.subsets, result.cpm_executables):
            assert executable.logical.measured_qubits == subset

    def test_reuses_provided_global_executable(self, device, ghz6):
        jigsaw = JigSaw(device, JigSawConfig(exact=True), seed=5)
        global_exec = jigsaw.compile_global(ghz6)
        result = jigsaw.run(
            ghz6, total_trials=16_384, global_executable=global_exec
        )
        assert result.global_executable is global_exec

    def test_deterministic_with_seed(self, device, ghz6):
        a = JigSaw(device, JigSawConfig(exact=True), seed=7).run(ghz6, 16_384)
        b = JigSaw(device, JigSawConfig(exact=True), seed=7).run(ghz6, 16_384)
        assert a.output_pmf.as_dict() == pytest.approx(b.output_pmf.as_dict())

    def test_bv_single_answer(self, device):
        from repro.workloads import bv

        workload = bv(5)
        jigsaw = JigSaw(device, JigSawConfig(exact=True), seed=3)
        result = jigsaw.run(workload.circuit, total_trials=16_384)
        assert result.output_pmf.mode() == workload.correct_outcomes[0]


class TestJigSawM:
    def test_improves_over_plain_jigsaw(self, device, ghz6):
        plain = JigSaw(device, JigSawConfig(exact=True), seed=5)
        multi = JigSawM(device, JigSawMConfig(exact=True), seed=5)
        shared = plain.compile_global(ghz6)
        plain_out = plain.run(ghz6, 32_768, global_executable=shared).output_pmf
        multi_out = multi.run(ghz6, 32_768, global_executable=shared).output_pmf
        plain_pst = probability_of_successful_trial(plain_out, CORRECT6)
        multi_pst = probability_of_successful_trial(multi_out, CORRECT6)
        assert multi_pst >= plain_pst * 0.98  # at least on par, usually above

    def test_pmf_count_matches_paper(self, device, ghz6):
        """§4.4.1: JigSaw-M with S sizes produces SN local PMFs."""
        multi = JigSawM(device, JigSawMConfig(exact=True), seed=5)
        result = multi.run(ghz6, 32_768)
        sizes = sorted(result.marginals_by_size)
        assert sizes == [2, 3, 4, 5]
        for size in sizes:
            assert len(result.marginals_by_size[size]) == 6
        assert result.num_cpms == 24

    def test_explicit_subsets_rejected(self, device, ghz6):
        multi = JigSawM(device, JigSawMConfig(exact=True), seed=5)
        with pytest.raises(ReconstructionError):
            multi.run(ghz6, 16_384, subsets=[(0, 1)])

    def test_marginal_sizes_match_layers(self, device, ghz6):
        multi = JigSawM(device, JigSawMConfig(exact=True), seed=5)
        result = multi.run(ghz6, 32_768)
        for size, marginals in result.marginals_by_size.items():
            assert all(m.subset_size == size for m in marginals)
