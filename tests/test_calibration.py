"""Tests for calibration data and its synthesis."""

import numpy as np
import pytest

from repro.devices import synthesize_calibration
from repro.devices.calibration import Calibration, _lognormal_profile
from repro.devices.topology import falcon27, line_topology
from repro.exceptions import DeviceError


def make_calibration(n=4):
    return Calibration(
        p01=np.full(n, 0.02),
        p10=np.full(n, 0.04),
        crosstalk=np.full(n, 0.003),
        gate_error_1q=np.full(n, 0.001),
        gate_error_2q={(i, i + 1): 0.01 for i in range(n - 1)},
    )


class TestCalibrationValidation:
    def test_valid(self):
        cal = make_calibration()
        assert cal.num_qubits == 4

    def test_length_mismatch(self):
        with pytest.raises(DeviceError):
            Calibration(
                p01=np.zeros(3),
                p10=np.zeros(4),
                crosstalk=np.zeros(4),
                gate_error_1q=np.zeros(4),
                gate_error_2q={},
            )

    def test_out_of_range_rates(self):
        with pytest.raises(DeviceError):
            Calibration(
                p01=np.array([0.9]),
                p10=np.array([0.0]),
                crosstalk=np.array([0.0]),
                gate_error_1q=np.array([0.0]),
                gate_error_2q={},
            )

    def test_edge_keys_normalised(self):
        cal = Calibration(
            p01=np.zeros(2),
            p10=np.zeros(2),
            crosstalk=np.zeros(2),
            gate_error_1q=np.zeros(2),
            gate_error_2q={(1, 0): 0.02},
        )
        assert cal.two_qubit_error(0, 1) == 0.02
        assert cal.two_qubit_error(1, 0) == 0.02

    def test_missing_edge_raises(self):
        cal = make_calibration()
        with pytest.raises(DeviceError):
            cal.two_qubit_error(0, 3)


class TestEffectiveRates:
    def test_isolated_equals_base(self):
        cal = make_calibration()
        assert cal.effective_p01(0, 1) == pytest.approx(0.02)
        assert cal.effective_p10(0, 1) == pytest.approx(0.04)

    def test_crosstalk_grows_linearly(self):
        cal = make_calibration()
        # Increment follows the qubit's asymmetry: p01 gets weight
        # 2*p01/(p01+p10) = 2/3 of the symmetric increment.
        for m in (2, 5, 10):
            expected = 0.02 + 0.003 * (m - 1) * (2.0 / 3.0)
            assert cal.effective_p01(0, m) == pytest.approx(expected)

    def test_crosstalk_prefers_dominant_direction(self):
        cal = make_calibration()
        inc01 = cal.effective_p01(0, 5) - cal.effective_p01(0, 1)
        inc10 = cal.effective_p10(0, 5) - cal.effective_p10(0, 1)
        assert inc10 > inc01  # p10 > p01 for this calibration

    def test_symmetric_error_increment(self):
        """The symmetrised error grows by exactly crosstalk*(m-1)."""
        cal = make_calibration()
        base = cal.effective_readout_error(0, 1)
        at_five = cal.effective_readout_error(0, 5)
        assert at_five - base == pytest.approx(0.003 * 4)

    def test_rates_capped(self):
        cal = Calibration(
            p01=np.array([0.4]),
            p10=np.array([0.4]),
            crosstalk=np.array([0.05]),
            gate_error_1q=np.array([0.0]),
            gate_error_2q={},
        )
        assert cal.effective_p01(0, 50) == 0.5

    def test_invalid_simultaneous_count(self):
        cal = make_calibration()
        with pytest.raises(DeviceError):
            cal.effective_p01(0, 0)

    def test_confusion_matrix_columns_stochastic(self):
        cal = make_calibration()
        for m in (1, 4, 9):
            conf = cal.confusion_matrix(1, m)
            assert np.allclose(conf.sum(axis=0), [1.0, 1.0])
            assert np.all(conf >= 0)

    def test_readout_error_symmetrised(self):
        cal = make_calibration()
        assert np.allclose(cal.readout_error, 0.03)


class TestQueries:
    def test_best_readout_qubits_sorted(self):
        cal = Calibration(
            p01=np.array([0.05, 0.01, 0.03]),
            p10=np.array([0.05, 0.01, 0.03]),
            crosstalk=np.zeros(3),
            gate_error_1q=np.zeros(3),
            gate_error_2q={},
        )
        assert list(cal.best_readout_qubits()) == [1, 2, 0]
        assert list(cal.best_readout_qubits(2)) == [1, 2]

    def test_vulnerable_qubits(self):
        errors = np.array([0.01, 0.02, 0.03, 0.20])
        cal = Calibration(
            p01=errors,
            p10=errors,
            crosstalk=np.zeros(4),
            gate_error_1q=np.zeros(4),
            gate_error_2q={},
        )
        assert list(cal.vulnerable_qubits(75.0)) == [3]

    def test_readout_stats(self):
        cal = make_calibration()
        stats = cal.readout_stats()
        assert stats.mean == pytest.approx(0.03)
        assert stats.minimum == pytest.approx(0.03)
        percent = stats.as_percent()
        assert percent.mean == pytest.approx(3.0)


class TestProfileSynthesis:
    def test_profile_matches_targets(self):
        profile = _lognormal_profile(27, 0.0276, 0.0470, 0.0085, 0.222)
        assert profile.min() == pytest.approx(0.0085)
        assert profile.max() == pytest.approx(0.222)
        assert np.median(profile) == pytest.approx(0.0276, rel=0.02)
        assert profile.mean() == pytest.approx(0.0470, rel=0.02)

    def test_profile_even_count(self):
        profile = _lognormal_profile(10, 0.03, 0.05, 0.01, 0.2)
        assert np.median(profile) == pytest.approx(0.03, rel=0.1)

    def test_profile_invalid_ordering(self):
        with pytest.raises(DeviceError):
            _lognormal_profile(10, 0.05, 0.03, 0.01, 0.2)

    def test_profile_too_few(self):
        with pytest.raises(DeviceError):
            _lognormal_profile(2, 0.03, 0.05, 0.01, 0.2)


class TestSynthesizeCalibration:
    def test_deterministic_with_seed(self):
        graph = falcon27()
        a = synthesize_calibration(graph, 0.027, 0.047, 0.009, 0.22, seed=5)
        b = synthesize_calibration(graph, 0.027, 0.047, 0.009, 0.22, seed=5)
        assert np.allclose(a.p01, b.p01)
        assert np.allclose(a.crosstalk, b.crosstalk)

    def test_different_seeds_differ(self):
        graph = falcon27()
        a = synthesize_calibration(graph, 0.027, 0.047, 0.009, 0.22, seed=5)
        b = synthesize_calibration(graph, 0.027, 0.047, 0.009, 0.22, seed=6)
        assert not np.allclose(a.p01, b.p01)

    def test_asymmetry_respected(self):
        graph = line_topology(8)
        cal = synthesize_calibration(
            graph, 0.02, 0.03, 0.008, 0.1, asymmetry=1.5, seed=1
        )
        ratio = cal.p10 / cal.p01
        assert np.allclose(ratio, 1.5, rtol=1e-6)

    def test_all_edges_calibrated(self):
        graph = falcon27()
        cal = synthesize_calibration(graph, 0.027, 0.047, 0.009, 0.22, seed=3)
        assert len(cal.gate_error_2q) == graph.number_of_edges()

    def test_invalid_rank_correlation(self):
        with pytest.raises(DeviceError):
            synthesize_calibration(
                line_topology(6), 0.02, 0.03, 0.01, 0.1,
                crosstalk_rank_correlation=1.5,
            )
