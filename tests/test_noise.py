"""Tests for the noise model and the fast noisy sampler.

The crucial test here validates the sampler's factorised channel against
the exact density-matrix oracle on a small device.
"""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.compiler import Layout, transpile
from repro.exceptions import NoiseModelError, SimulationError
from repro.noise import (
    NoiseModel,
    NoisySampler,
    apply_confusions,
    clbit_probability_vector,
)
from repro.sim import DensityMatrixSimulator, StatevectorSimulator
from tests.conftest import make_line_device


@pytest.fixture
def device():
    return make_line_device(num_qubits=4, readout=0.04, crosstalk=0.002)


@pytest.fixture
def noise(device):
    return NoiseModel.from_device(device)


def compile_identity(circuit, device):
    layout = Layout.trivial(circuit.num_qubits)
    return transpile(circuit, device, attempts=1, initial_layouts=[layout], seed=0)


class TestNoiseModel:
    def test_gate_survival_product(self, device, noise):
        qc = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2).measure_all()
        executable = compile_identity(qc, device)
        survival = noise.gate_survival_probability(executable.physical)
        expected = (1 - 0.0005) * (1 - 0.01) ** 2
        assert survival == pytest.approx(expected)

    def test_swap_counts_as_three_cnots(self, device, noise):
        physical = QuantumCircuit(4).swap(0, 1)
        survival = noise.gate_survival_probability(physical)
        assert survival == pytest.approx((1 - 0.01) ** 3)

    def test_gate_noise_disabled(self, device):
        noise = NoiseModel.from_device(device, gate_noise_enabled=False)
        physical = QuantumCircuit(4).cx(0, 1).cx(1, 2)
        assert noise.gate_survival_probability(physical) == 1.0

    def test_readout_disabled(self, device):
        noise = NoiseModel.from_device(device, readout_noise_enabled=False)
        p01, p10 = noise.readout_rates([0, 1], 2)
        assert np.all(p01 == 0) and np.all(p10 == 0)

    def test_readout_rates_crosstalk(self, device, noise):
        p01_iso, _ = noise.readout_rates([0], 1)
        p01_wide, _ = noise.readout_rates([0], 4)
        assert p01_wide[0] > p01_iso[0]

    def test_three_qubit_gate_rejected(self, device, noise):
        physical = QuantumCircuit(4).ccx(0, 1, 2)
        with pytest.raises(NoiseModelError):
            noise.gate_survival_probability(physical)

    def test_confusion_matrices_identity_when_disabled(self, device):
        noise = NoiseModel.from_device(device, readout_noise_enabled=False)
        for conf in noise.confusion_matrices([0, 1], 2):
            assert np.allclose(conf, np.eye(2))


class TestClbitProbabilityVector:
    def test_identity_map(self):
        probs = np.array([0.5, 0, 0, 0.5])
        vec = clbit_probability_vector(probs, {0: 0, 1: 1}, 2)
        assert np.allclose(vec, probs)

    def test_swapped_clbits(self):
        # qubit 0 -> clbit 1, qubit 1 -> clbit 0
        probs = np.zeros(4)
        probs[1] = 1.0  # qubit 0 set
        vec = clbit_probability_vector(probs, {0: 1, 1: 0}, 2)
        assert np.isclose(vec[2], 1.0)  # clbit 1 set

    def test_subset_marginal(self):
        # GHZ-3 over qubits; measure qubit 1 only
        probs = np.zeros(8)
        probs[0] = 0.5
        probs[7] = 0.5
        vec = clbit_probability_vector(probs, {1: 0}, 3)
        assert np.allclose(vec, [0.5, 0.5])

    def test_empty_map_rejected(self):
        with pytest.raises(SimulationError):
            clbit_probability_vector(np.ones(2), {}, 1)

    def test_noncontiguous_clbits_rejected(self):
        with pytest.raises(SimulationError):
            clbit_probability_vector(np.ones(4) / 4, {0: 0, 1: 2}, 2)


class TestApplyConfusions:
    def test_matches_kron_reference(self):
        rng = np.random.default_rng(0)
        dist = rng.random(8)
        dist /= dist.sum()
        confusions = [
            np.array([[0.9, 0.2], [0.1, 0.8]]),
            np.array([[0.95, 0.05], [0.05, 0.95]]),
            np.eye(2),
        ]
        # kron order: clbit 2 ⊗ clbit 1 ⊗ clbit 0
        full = np.kron(confusions[2], np.kron(confusions[1], confusions[0]))
        assert np.allclose(apply_confusions(dist, confusions), full @ dist)

    def test_preserves_total_mass(self):
        dist = np.array([0.25, 0.25, 0.25, 0.25])
        confusions = [np.array([[0.8, 0.3], [0.2, 0.7]])] * 2
        assert np.isclose(apply_confusions(dist, confusions).sum(), 1.0)

    def test_shape_mismatch(self):
        with pytest.raises(SimulationError):
            apply_confusions(np.ones(4) / 4, [np.eye(2)])


class TestSamplerAgainstOracle:
    """The factorised sampler must match the density-matrix channel."""

    def test_exact_distribution_matches_density_matrix(self, device, noise):
        qc = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2).measure_all()
        executable = compile_identity(qc, device)
        sampler = NoisySampler(noise, seed=0)
        fast = sampler.exact_distribution(executable)

        # Oracle: readout channel on the ideal distribution (gate noise off
        # for a clean comparison of the readout part).
        quiet = NoiseModel.from_device(device, gate_noise_enabled=False)
        fast_readout_only = NoisySampler(quiet, seed=0).exact_distribution(
            executable
        )
        confusions = {
            q: device.calibration.confusion_matrix(q, 3)
            for q in (0, 1, 2)
        }
        oracle = DensityMatrixSimulator().measured_distribution(
            qc, readout_confusions=confusions
        )
        for key in set(oracle) | set(fast_readout_only):
            assert fast_readout_only.get(key, 0.0) == pytest.approx(
                oracle.get(key, 0.0), abs=1e-9
            )
        # With gate noise on, mass moves away from the peak outcomes.
        assert fast["000"] < fast_readout_only["000"]

    def test_sampled_counts_converge_to_exact(self, device, noise):
        qc = QuantumCircuit(2).h(0).cx(0, 1).measure_all()
        executable = compile_identity(qc, device)
        sampler = NoisySampler(noise, seed=3)
        exact = sampler.exact_distribution(executable)
        counts = sampler.run(executable, shots=200_000)
        total = sum(counts.values())
        for key, prob in exact.items():
            assert counts.get(key, 0) / total == pytest.approx(prob, abs=0.01)

    def test_counts_sum_to_shots(self, device, noise, ghz4):
        executable = compile_identity(ghz4, device)
        counts = NoisySampler(noise, seed=1).run(executable, 4096)
        assert sum(counts.values()) == 4096

    def test_reproducible_with_seed(self, device, noise, ghz4):
        executable = compile_identity(ghz4, device)
        a = NoisySampler(noise, seed=9).run(executable, 1024)
        b = NoisySampler(noise, seed=9).run(executable, 1024)
        assert a == b

    def test_shots_must_be_positive(self, device, noise, ghz4):
        executable = compile_identity(ghz4, device)
        with pytest.raises(SimulationError):
            NoisySampler(noise).run(executable, 0)

    def test_chunked_sampling_conserves_shots(self, device, noise, ghz4):
        # Chunking bounds memory, not totals: shots that span many chunks
        # (including a ragged final chunk) all land in the histogram.
        executable = compile_identity(ghz4, device)
        counts = NoisySampler(noise, seed=4, chunk_shots=100).run(
            executable, 4_099
        )
        assert sum(counts.values()) == 4_099

    def test_chunked_sampling_statistics_match(self, device, noise, ghz4):
        # A chunked stream draws different variates than an unchunked one
        # but must converge to the same channel.
        executable = compile_identity(ghz4, device)
        chunked = NoisySampler(noise, seed=5, chunk_shots=1_000).run(
            executable, 100_000
        )
        exact = NoisySampler(noise).exact_distribution(executable)
        for key, prob in exact.items():
            assert chunked.get(key, 0) / 100_000 == pytest.approx(
                prob, abs=0.01
            )

    def test_chunk_shots_must_be_positive(self, noise):
        with pytest.raises(SimulationError):
            NoisySampler(noise, chunk_shots=0)

    def test_run_many_shares_one_stream(self, device, noise, ghz4):
        # run_many(exe, [a, b]) is exactly run(a) then run(b) on the same
        # stream — the coalesced-sampling contract.
        executable = compile_identity(ghz4, device)
        merged = NoisySampler(noise, seed=6).run_many(executable, [700, 300])
        reference = NoisySampler(noise, seed=6)
        assert merged[0] == reference.run(executable, 700)
        assert merged[1] == reference.run(executable, 300)

    def test_run_many_rejects_zero_allocation(self, device, noise, ghz4):
        executable = compile_identity(ghz4, device)
        with pytest.raises(SimulationError):
            NoisySampler(noise, seed=6).run_many(executable, [700, 0])

    def test_exact_distribution_normalised(self, device, noise, ghz4):
        executable = compile_identity(ghz4, device)
        dist = NoisySampler(noise).exact_distribution(executable)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_expected_counts_scale(self, device, noise, ghz4):
        executable = compile_identity(ghz4, device)
        sampler = NoisySampler(noise)
        expected = sampler.expected_counts(executable, 1000)
        assert sum(expected.values()) == pytest.approx(1000.0)

    def test_no_noise_reproduces_ideal(self, device, ghz4):
        quiet = NoiseModel.from_device(
            device, gate_noise_enabled=False, readout_noise_enabled=False
        )
        executable = compile_identity(ghz4, device)
        dist = NoisySampler(quiet).exact_distribution(executable)
        ideal = StatevectorSimulator().ideal_distribution(ghz4)
        for key in set(dist) | set(ideal):
            assert dist.get(key, 0.0) == pytest.approx(
                ideal.get(key, 0.0), abs=1e-12
            )

    def test_cpm_reads_fewer_bits(self, device, noise, ghz4):
        cpm = ghz4.with_measured_subset([0, 1])
        executable = compile_identity(cpm, device)
        dist = NoisySampler(noise).exact_distribution(executable)
        assert all(len(key) == 2 for key in dist)
        # Correlated GHZ marginal: 00 and 11 dominate.
        assert dist["00"] + dist["11"] > 0.8
