"""Tests for variational sweeps: coalesced K-point execution.

The contract: ``Session.run_sweep`` submits all K bound iterations as
one backend batch and its results are **bit-for-bit equal** to running
the iterations one at a time in an equally seeded session — for every
scheme, exact and sampled, at any worker count.
"""

import json

import pytest

from repro.exceptions import ExperimentError, ServiceError
from repro.runtime import SCHEME_NAMES, Session
from repro.service import JobSpec, MitigationService, SweepJobSpec, job_fingerprint
from repro.workloads import ghz, ising, qaoa_maxcut
from repro.workloads.probe import probe_circuit
from repro.workloads.suite import workload_by_name
from tests.conftest import make_varied_line_device

POINTS = [[0.3, 0.4], [0.5, 0.2], [1.1, 0.9]]
TRIALS = 2_048


@pytest.fixture(scope="module")
def device():
    return make_varied_line_device(num_qubits=8)


@pytest.fixture(scope="module")
def workload():
    return qaoa_maxcut(5)


def pmf_dicts(sweep_result):
    return [pmf.as_dict() for pmf in sweep_result.output_pmfs]


class TestSweepEqualsPerIteration:
    """One coalesced batch == the unbatched per-iteration path."""

    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    @pytest.mark.parametrize("exact", [True, False], ids=["exact", "sampled"])
    def test_all_schemes(self, device, workload, scheme, exact):
        coalesced = Session(
            device, seed=13, exact=exact, total_trials=TRIALS
        ).run_sweep(scheme, workload, POINTS)

        session = Session(device, seed=13, exact=exact, total_trials=TRIALS)
        sweep = session.parameter_sweep(workload, scheme=scheme)
        one_at_a_time = [sweep.run_point(point) for point in POINTS]

        assert pmf_dicts(coalesced) == [
            (r.output_pmf if hasattr(r, "output_pmf") else r).as_dict()
            for r in one_at_a_time
        ]

    @pytest.mark.parametrize("scheme", ["jigsaw", "edm", "baseline"])
    def test_worker_count_invariance(self, device, workload, scheme):
        results = {}
        for workers in (1, 4):
            with Session(
                device, seed=13, exact=False, total_trials=TRIALS,
                workers=workers,
            ) as session:
                results[workers] = pmf_dicts(
                    session.run_sweep(scheme, workload, POINTS)
                )
        assert results[1] == results[4]

    def test_sweep_of_bare_parameterized_circuit(self, device, workload):
        session_a = Session(device, seed=9, exact=True, total_trials=TRIALS)
        from_circuit = session_a.run_sweep(
            "jigsaw", workload.template_circuit, POINTS
        )
        assert len(from_circuit) == len(POINTS)
        for pmf in from_circuit.output_pmfs:
            assert sum(pmf.as_dict().values()) == pytest.approx(1.0)


class TestSweepMechanics:
    def test_route_calls_constant_in_k(self, device, workload):
        counts = {}
        for k in (1, 6):
            session = Session(device, seed=13, exact=True, total_trials=TRIALS)
            points = [[0.1 + 0.05 * i, 0.2] for i in range(k)]
            session.run_sweep("jigsaw", workload, points)
            counters = session.pipeline_stats()["counters"]
            counts[k] = counters["route_calls"]
            assert counters["template_binds"] == k
        assert counts[1] == counts[6]

    def test_sweep_result_to_dict(self, device, workload):
        session = Session(device, seed=13, exact=True, total_trials=TRIALS)
        result = session.run_sweep("jigsaw", workload, POINTS)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["scheme"] == "jigsaw"
        assert payload["parameter_names"] == ["gamma_0", "beta_0"]
        assert payload["num_iterations"] == len(POINTS)
        assert len(payload["output_pmfs"]) == len(POINTS)

    def test_unknown_scheme_rejected(self, device, workload):
        session = Session(device, seed=13, exact=True)
        with pytest.raises(ExperimentError):
            session.run_sweep("magic", workload, POINTS)

    def test_unsweepable_workload_rejected(self, device):
        session = Session(device, seed=13, exact=True)
        with pytest.raises(ExperimentError):
            session.run_sweep("jigsaw", ghz(5), POINTS)

    def test_empty_point_list_rejected(self, device, workload):
        session = Session(device, seed=13, exact=True)
        with pytest.raises(ExperimentError):
            session.run_sweep("jigsaw", workload, [])

    def test_wrong_width_point_rejected(self, device, workload):
        session = Session(device, seed=13, exact=True)
        with pytest.raises(Exception):
            session.run_sweep("jigsaw", workload, [[0.1]])


class TestWorkloadTemplates:
    """Parameterized workloads bind their defaults to the exact circuit."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: qaoa_maxcut(5),
            lambda: qaoa_maxcut(4, depth=2),
            lambda: ising(4),
            lambda: probe_circuit(3, probe_state="tilted"),
        ],
        ids=["qaoa-p1", "qaoa-p2", "ising", "probe"],
    )
    def test_default_bind_reproduces_circuit(self, factory):
        from repro.runtime.fingerprint import circuit_fingerprint

        workload = factory()
        assert workload.is_sweepable
        rebound = workload.bound_circuit(workload.default_parameters)
        assert circuit_fingerprint(rebound) == circuit_fingerprint(
            workload.circuit
        )
        assert not workload.circuit.is_parameterized
        assert workload.template_circuit.is_parameterized


class TestSweepJobs:
    """SweepJobSpec through the service == solo session, plus validation."""

    def spec(self, **overrides):
        payload = dict(
            tenant="acme",
            workload="QAOA-5 p1",
            device="toronto",
            scheme="jigsaw",
            total_trials=1_024,
            seed=7,
            parameter_sets=((0.3, 0.4), (0.5, 0.2)),
        )
        payload.update(overrides)
        return SweepJobSpec(**payload)

    def test_roundtrip_and_dispatch(self):
        spec = self.spec()
        entry = json.loads(json.dumps(spec.to_dict()))
        assert JobSpec.from_dict(entry) == spec
        assert isinstance(JobSpec.from_dict(entry), SweepJobSpec)

    def test_validation(self):
        with pytest.raises(ServiceError):
            self.spec(parameter_sets=())
        with pytest.raises(ServiceError):
            self.spec(parameter_sets=((0.1,), (0.2, 0.3)))  # ragged
        with pytest.raises(ServiceError):
            self.spec(workload=None, qasm="OPENQASM 2.0;")
        with pytest.raises(ServiceError):
            self.spec(eps_rescore_threshold=-1.0)
        with pytest.raises(ServiceError):
            SweepJobSpec.from_dict({**self.spec().to_dict(), "bogus": 1})

    def test_fingerprint_covers_points(self):
        from repro.service.job import spec_circuit

        a = self.spec()
        b = self.spec(parameter_sets=((0.3, 0.4), (0.5, 0.21)))
        plain = JobSpec(
            tenant="acme", workload="QAOA-5 p1", device="toronto",
            scheme="jigsaw", total_trials=1_024, seed=7,
        )
        circuit = spec_circuit(a)
        prints = {
            job_fingerprint(spec, circuit, "devkey", "salt")
            for spec in (a, b, plain)
        }
        assert len(prints) == 3

    def test_service_matches_solo_session(self):
        from repro.devices.library import DEVICE_FACTORIES

        spec = self.spec()
        with MitigationService() as service:
            job = service.submit(spec)
            service.drain()
        assert job.status.value == "done"

        session = Session(
            DEVICE_FACTORIES["toronto"](), seed=7, total_trials=1_024,
            exact=True, compile_attempts=4, cpm_attempts=3, ensemble_size=4,
        )
        solo = session.run_sweep(
            "jigsaw", workload_by_name("QAOA-5 p1"), spec.parameter_sets
        )
        assert job.result == json.loads(json.dumps(solo.to_dict()))

    def test_service_memoizes_sweeps(self):
        spec = self.spec()
        with MitigationService() as service:
            first = service.submit(spec)
            service.drain()
            second = service.submit(spec)
        assert first.source == "executed"
        assert second.source == "memoized"
        assert second.result == first.result

    def test_unsweepable_workload_fails_job(self):
        spec = self.spec(workload="GHZ-8")
        with MitigationService() as service:
            job = service.submit(spec)
            service.drain()
        assert job.status.value == "failed"
        assert "template" in (job.error or "")
