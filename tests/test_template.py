"""Tests for symbolic parameters and compile-once plan templates.

The load-bearing invariant: every compile stage is parameter
independent, so ``PlanTemplate.bind(p)`` must be **bit-for-bit
identical** to running the full pipeline on the bound circuit — same
executables, same layouts, same EPS scores, same subsets.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Parameter, ParameterExpression, QuantumCircuit
from repro.circuits.parameter import bind_value, is_symbolic
from repro.compiler.template import (
    DEFAULT_EPS_RESCORE_THRESHOLD,
    PlanTemplate,
    bind_executable,
    normalize_values,
)
from repro.exceptions import CompilationError, GateError
from repro.runtime import Session, circuit_fingerprint, executable_fingerprint
from repro.runtime.fingerprint import body_fingerprint, structure_fingerprint
from repro.workloads import qaoa_maxcut
from repro.workloads.workload import Workload
from tests.conftest import make_varied_line_device


@pytest.fixture(scope="module")
def device():
    return make_varied_line_device(num_qubits=8)


def symbolic_pair():
    """A two-parameter circuit and its (gamma, beta) parameters."""
    gamma, beta = Parameter("gamma"), Parameter("beta")
    qc = QuantumCircuit(4, name="vqe")
    for q in range(4):
        qc.h(q)
    for q in range(3):
        qc.rzz(gamma, q, q + 1)
    for q in range(4):
        qc.rx(2.0 * beta, q)
    qc.measure_all()
    return qc, (gamma, beta)


class TestParameter:
    def test_identity_by_name(self):
        assert Parameter("a") == Parameter("a")
        assert hash(Parameter("a")) == hash(Parameter("a"))
        assert Parameter("a") != Parameter("b")

    def test_expression_arithmetic(self):
        beta = Parameter("beta")
        expr = 2.0 * beta
        assert isinstance(expr, ParameterExpression)
        assert expr.bind(0.25) == 2.0 * 0.25
        assert (expr + 1.0).bind(0.25) == 2.0 * 0.25 + 1.0
        assert (-expr).bind(0.25) == -(2.0 * 0.25)
        assert (expr / 2.0).bind(0.3) == 0.3

    def test_bind_is_float_exact(self):
        # Binding must produce the identical float a direct construction
        # would: (2.0*beta)(v) == 2.0*v bit-for-bit.
        beta = Parameter("beta")
        for value in (0.1, math.pi / 3.0, 1e-8, 123.456):
            assert (2.0 * beta).bind(value) == 2.0 * value

    def test_bind_value_passthrough(self):
        theta = Parameter("theta")
        assert bind_value(theta, {"theta": 0.5}) == 0.5
        assert bind_value(theta, {"other": 0.5}) is theta  # partial bind
        assert bind_value(1.25, {"theta": 0.5}) == 1.25
        assert is_symbolic(theta) and not is_symbolic(1.25)


class TestCircuitBind:
    def test_parameters_first_appearance_order(self):
        qc, (gamma, beta) = symbolic_pair()
        assert qc.parameters == (gamma, beta)
        assert qc.is_parameterized

    def test_bind_matches_direct_construction(self):
        qc, _ = symbolic_pair()
        bound = qc.bind({"gamma": 0.3, "beta": 0.7})
        direct = QuantumCircuit(4, name="vqe")
        for q in range(4):
            direct.h(q)
        for q in range(3):
            direct.rzz(0.3, q, q + 1)
        for q in range(4):
            direct.rx(2.0 * 0.7, q)
        direct.measure_all()
        assert circuit_fingerprint(bound) == circuit_fingerprint(direct)
        assert not bound.is_parameterized

    def test_bind_by_sequence_and_parameter_key(self):
        qc, (gamma, beta) = symbolic_pair()
        by_seq = qc.bind([0.3, 0.7])
        by_map = qc.bind({gamma: 0.3, beta: 0.7})
        assert circuit_fingerprint(by_seq) == circuit_fingerprint(by_map)

    def test_strict_bind_validates(self):
        qc, _ = symbolic_pair()
        with pytest.raises(Exception):
            qc.bind({"gamma": 0.3})  # missing beta
        with pytest.raises(Exception):
            qc.bind({"gamma": 0.3, "beta": 0.7, "nope": 1.0})

    def test_unbound_matrix_raises(self):
        qc, _ = symbolic_pair()
        gate = next(
            instr.gate
            for instr in qc.instructions
            if instr.gate is not None and instr.gate.is_parameterized
        )
        with pytest.raises(GateError):
            gate.matrix()


class TestStructureFingerprint:
    def test_body_fingerprint_is_angle_free(self):
        qc, _ = symbolic_pair()
        a = qc.bind({"gamma": 0.3, "beta": 0.7})
        b = qc.bind({"gamma": 1.1, "beta": 0.2})
        assert body_fingerprint(a) == body_fingerprint(b)
        assert body_fingerprint(a) == body_fingerprint(qc)
        assert structure_fingerprint(a) == structure_fingerprint(qc)

    def test_circuit_fingerprint_keeps_angles(self):
        qc, _ = symbolic_pair()
        a = qc.bind({"gamma": 0.3, "beta": 0.7})
        b = qc.bind({"gamma": 1.1, "beta": 0.2})
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_structure_differs_across_structures(self):
        qc, _ = symbolic_pair()
        other = QuantumCircuit(4)
        other.h(0)
        other.measure_all()
        assert structure_fingerprint(qc) != structure_fingerprint(other)


def plan_signature(plan):
    """Everything observable about a plan, for bit-for-bit comparison."""
    return {
        "scheme": plan.scheme,
        "circuit": circuit_fingerprint(plan.circuit),
        "fingerprint": plan.circuit_fingerprint,
        "global": executable_fingerprint(plan.global_executable),
        "global_eps": plan.global_executable.eps,
        "layers": [
            {
                "subset_size": layer.subset_size,
                "subsets": layer.subsets,
                "executables": [
                    executable_fingerprint(e) for e in layer.executables
                ],
                "eps": [e.eps for e in layer.executables],
                "swaps": [e.num_swaps for e in layer.executables],
            }
            for layer in plan.layers
        ],
        "global_trials": plan.global_trials,
        "trials_per_cpm": plan.trials_per_cpm,
    }


class TestTemplateBindEqualsFullCompile:
    """template.bind(p) == full-pipeline compile of the bound circuit."""

    @settings(max_examples=8, deadline=None)
    @given(
        gamma=st.floats(-math.pi, math.pi, allow_nan=False, width=64),
        beta=st.floats(-math.pi, math.pi, allow_nan=False, width=64),
        scheme=st.sampled_from(["jigsaw", "jigsaw_nr", "jigsaw_m"]),
    )
    def test_workload_template_property(self, device, gamma, beta, scheme):
        workload = qaoa_maxcut(5)
        point = [gamma, beta]

        session_a = Session(device, seed=17, exact=True)
        template = session_a.plan_template(workload, scheme=scheme)
        bound_plan = template.bind(point)

        session_b = Session(device, seed=17, exact=True)
        bound_workload = Workload(
            name=workload.name,
            circuit=workload.bound_circuit(point),
            correct_outcomes=workload.correct_outcomes,
            metadata=workload.metadata,
        )
        fresh_plan = session_b.plan(bound_workload, scheme=scheme)
        assert plan_signature(bound_plan) == plan_signature(fresh_plan)

    def test_bare_circuit_template(self, device):
        qc, _ = symbolic_pair()
        point = [0.4, 1.2]

        session_a = Session(device, seed=5, exact=True)
        template = session_a.plan_template(qc, scheme="jigsaw")
        bound_plan = template.bind(point)

        session_b = Session(device, seed=5, exact=True)
        fresh_plan = session_b.plan(qc.bind(point), scheme="jigsaw")
        assert plan_signature(bound_plan) == plan_signature(fresh_plan)

    def test_template_cached_per_structure(self, device):
        workload = qaoa_maxcut(5)
        session = Session(device, seed=17, exact=True)
        t1 = session.plan_template(workload, scheme="jigsaw")
        t2 = session.plan_template(workload, scheme="jigsaw")
        assert t1 is t2
        t3 = session.plan_template(workload, scheme="jigsaw_m")
        assert t3 is not t1


class TestTemplateMechanics:
    def test_from_plan_rejects_concrete_plan(self, device):
        workload = qaoa_maxcut(5)
        session = Session(device, seed=0, exact=True)
        plan = session.plan(workload, scheme="jigsaw")
        with pytest.raises(CompilationError):
            PlanTemplate.from_plan(plan)

    def test_threshold_must_be_positive(self, device):
        workload = qaoa_maxcut(5)
        session = Session(device, seed=0, exact=True)
        with pytest.raises(Exception):
            session.plan_template(
                workload, scheme="jigsaw", eps_rescore_threshold=0.0
            )

    def test_normalize_values_validates(self):
        qc, (gamma, beta) = symbolic_pair()
        with pytest.raises(CompilationError):
            normalize_values((gamma, beta), [0.1])
        with pytest.raises(CompilationError):
            normalize_values((gamma, beta), {"gamma": 0.1})
        with pytest.raises(CompilationError):
            normalize_values((gamma, beta), {"gamma": 0.1, "beta": 0.2, "x": 3})
        assert normalize_values((gamma, beta), [0.1, 0.2]) == {
            "gamma": 0.1,
            "beta": 0.2,
        }

    def test_rescore_policy_epochs(self, device):
        workload = qaoa_maxcut(5)
        session = Session(device, seed=17, exact=True)
        template = session.plan_template(
            workload, scheme="jigsaw", eps_rescore_threshold=0.5
        )
        template.bind([0.3, 0.4])  # first bind always scores
        assert (template.num_binds, template.num_rescores) == (1, 1)
        template.bind([0.35, 0.45])  # small drift: no re-score
        assert (template.num_binds, template.num_rescores) == (2, 1)
        template.bind([1.0, 0.4])  # 0.7 drift > threshold
        assert (template.num_binds, template.num_rescores) == (3, 2)
        counters = session.pipeline_stats()["counters"]
        assert counters["template_binds"] == 3
        assert counters["template_eps_rescores"] == 2

    def test_rescore_reproduces_compile_time_eps(self, device):
        # EPS is angle independent, so a re-score epoch must land on the
        # exact scores the compile-time selection used.
        workload = qaoa_maxcut(5)
        session = Session(device, seed=17, exact=True)
        template = session.plan_template(
            workload, scheme="jigsaw", eps_rescore_threshold=1e-9
        )
        first = template.bind([0.3, 0.4])
        far = template.bind([3.0, -3.0])  # forced re-score epoch
        assert template.num_rescores == 2
        assert first.global_executable.eps == far.global_executable.eps
        for layer_a, layer_b in zip(first.layers, far.layers):
            assert [e.eps for e in layer_a.executables] == [
                e.eps for e in layer_b.executables
            ]

    def test_bind_executable_reuses_layouts(self, device):
        workload = qaoa_maxcut(5)
        session = Session(device, seed=17, exact=True)
        template = session.plan_template(workload, scheme="jigsaw")
        prototype = template.prototype.global_executable
        bound = bind_executable(prototype, {"gamma_0": 0.3, "beta_0": 0.4})
        assert bound.initial_layout == prototype.initial_layout
        assert bound.final_layout == prototype.final_layout
        assert bound.num_swaps == prototype.num_swaps
        assert not bound.physical.is_parameterized

    def test_describe_mentions_parameters(self, device):
        workload = qaoa_maxcut(5)
        session = Session(device, seed=17, exact=True)
        template = session.plan_template(workload, scheme="jigsaw")
        text = template.describe()
        assert "gamma_0" in text and "jigsaw" in text

    def test_default_threshold_exported(self):
        assert DEFAULT_EPS_RESCORE_THRESHOLD > 0
