"""Property-based tests: SABRE routing preserves circuit semantics.

For random circuits on random initial layouts over a small device, the
routed physical circuit must produce exactly the logical circuit's
outcome distribution — the strongest single invariant of the compiler.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.compiler import Layout, route
from repro.sim import StatevectorSimulator
from tests.conftest import make_line_device

_DEVICE = make_line_device(num_qubits=6)
_SIM = StatevectorSimulator()

_GATE_CHOICES = st.sampled_from(["h", "x", "t", "s", "rx", "cx", "cz", "rzz"])


@st.composite
def random_circuit(draw):
    num_qubits = draw(st.integers(min_value=2, max_value=4))
    qc = QuantumCircuit(num_qubits)
    num_gates = draw(st.integers(min_value=1, max_value=10))
    for _ in range(num_gates):
        name = draw(_GATE_CHOICES)
        if name in ("cx", "cz", "rzz"):
            a = draw(st.integers(min_value=0, max_value=num_qubits - 1))
            b = draw(
                st.integers(min_value=0, max_value=num_qubits - 1).filter(
                    lambda x: x != a
                )
            )
            if name == "cx":
                qc.cx(a, b)
            elif name == "cz":
                qc.cz(a, b)
            else:
                qc.rzz(draw(st.floats(min_value=-3, max_value=3)), a, b)
        else:
            q = draw(st.integers(min_value=0, max_value=num_qubits - 1))
            if name == "rx":
                qc.rx(draw(st.floats(min_value=-3, max_value=3)), q)
            else:
                getattr(qc, name)(q)
    qc.measure_all()
    return qc


@st.composite
def circuit_with_layout(draw):
    qc = draw(random_circuit())
    physical = draw(
        st.permutations(range(_DEVICE.num_qubits)).map(
            lambda perm: perm[: qc.num_qubits]
        )
    )
    return qc, Layout({l: p for l, p in enumerate(physical)})


class TestRoutingSemantics:
    @settings(max_examples=40, deadline=None)
    @given(circuit_with_layout(), st.integers(min_value=0, max_value=2 ** 16))
    def test_routed_distribution_matches_logical(self, pair, seed):
        circuit, layout = pair
        routed = route(circuit, _DEVICE, layout, seed=seed)
        logical = _SIM.ideal_distribution(circuit)
        physical = _SIM.ideal_distribution(routed.physical)
        keys = set(logical) | set(physical)
        for key in keys:
            assert np.isclose(
                logical.get(key, 0.0), physical.get(key, 0.0), atol=1e-9
            ), (circuit.count_ops(), layout.as_dict(), key)

    @settings(max_examples=40, deadline=None)
    @given(circuit_with_layout(), st.integers(min_value=0, max_value=2 ** 16))
    def test_routed_gates_respect_coupling(self, pair, seed):
        circuit, layout = pair
        routed = route(circuit, _DEVICE, layout, seed=seed)
        for ins in routed.physical.gates():
            if len(ins.qubits) == 2:
                assert _DEVICE.are_coupled(*ins.qubits)

    @settings(max_examples=30, deadline=None)
    @given(circuit_with_layout())
    def test_final_layout_tracks_swaps(self, pair):
        circuit, layout = pair
        routed = route(circuit, _DEVICE, layout, seed=0)
        # Replaying the emitted SWAPs onto the initial layout must give
        # the reported final layout.
        replay = routed.initial_layout.copy()
        for ins in routed.physical.gates():
            if ins.gate.name == "swap":
                replay.apply_swap(*ins.qubits)
        assert replay == routed.final_layout
