"""Tests for the benchmark workloads (paper Table 2)."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.metrics import cut_size
from repro.workloads import (
    PAPER_SUITE_NAMES,
    Workload,
    bv,
    ghz,
    graycode,
    ising,
    paper_suite,
    probe_circuit,
    qaoa_maxcut,
    small_suite,
    workload_by_name,
)
from repro.workloads.qaoa import cut_values, path_graph_edges, ring_graph_edges


class TestBv:
    def test_default_secret_all_ones(self):
        workload = bv(6)
        assert workload.correct_outcomes == ("111111",)
        assert workload.num_qubits == 7  # +1 ancilla

    def test_ideal_distribution_deterministic(self):
        workload = bv(4)
        assert workload.ideal_distribution() == {"1111": 1.0}
        assert workload.ideal_success_probability() == pytest.approx(1.0)

    def test_custom_secret(self):
        workload = bv(4, secret="1010")
        assert workload.ideal_distribution() == {"1010": 1.0}

    def test_gate_counts_table2(self):
        """Table 2: BV-n has n two-qubit gates for the all-ones secret."""
        workload = bv(6)
        assert workload.circuit.num_two_qubit_gates() == 6

    def test_invalid_secret(self):
        with pytest.raises(WorkloadError):
            bv(4, secret="10")
        with pytest.raises(WorkloadError):
            bv(4, secret="10x0")

    def test_invalid_size(self):
        with pytest.raises(WorkloadError):
            bv(0)


class TestGhz:
    def test_two_correct_outcomes(self):
        workload = ghz(5)
        assert workload.correct_outcomes == ("00000", "11111")

    def test_ideal_fifty_fifty(self):
        dist = ghz(4).ideal_distribution()
        assert dist["0000"] == pytest.approx(0.5)
        assert dist["1111"] == pytest.approx(0.5)

    def test_gate_counts_table2(self):
        """Table 2: GHZ-n has 1 single-qubit and n-1 two-qubit gates."""
        workload = ghz(14)
        assert workload.circuit.num_single_qubit_gates() == 1
        assert workload.circuit.num_two_qubit_gates() == 13

    def test_too_small(self):
        with pytest.raises(WorkloadError):
            ghz(1)


class TestGraycode:
    def test_deterministic_output(self):
        workload = graycode(8)
        dist = workload.ideal_distribution()
        assert len(dist) == 1
        assert set(dist) == set(workload.correct_outcomes)

    def test_gate_counts_table2(self):
        """Table 2: Graycode-n has n/2 1Q gates and n-1 2Q gates."""
        workload = graycode(18)
        assert workload.circuit.num_single_qubit_gates() == 9
        assert workload.circuit.num_two_qubit_gates() == 17

    def test_decode_matches_classical(self):
        """Circuit output equals the classical Gray decode of the input."""
        workload = graycode(6)
        gray = workload.metadata["gray_input"]
        bits = [int(c) for c in gray]
        binary = [bits[0]]
        for bit in bits[1:]:
            binary.append(binary[-1] ^ bit)
        expected = "".join(map(str, binary))
        assert workload.correct_outcomes == (expected,)

    def test_too_small(self):
        with pytest.raises(WorkloadError):
            graycode(1)


class TestIsing:
    def test_gate_counts_table2(self):
        """Table 2: Ising-n has n(n-1) two-qubit gates (2 Trotter steps)."""
        workload = ising(10)
        assert workload.circuit.num_two_qubit_gates() == 90

    def test_correct_outcomes_are_dominant(self):
        workload = ising(6)
        ideal = workload.ideal_distribution()
        peak = max(ideal.values())
        for outcome in workload.correct_outcomes:
            assert ideal[outcome] >= 0.5 * peak

    def test_too_small(self):
        with pytest.raises(WorkloadError):
            ising(1)


class TestQaoa:
    def test_path_graph_edges(self):
        assert path_graph_edges(4) == ((0, 1), (1, 2), (2, 3))

    def test_ring_graph_edges(self):
        edges = ring_graph_edges(4)
        assert len(edges) == 4

    def test_cut_values_vector(self):
        cuts = cut_values(2, [(0, 1)])
        assert cuts.tolist() == [0, 1, 1, 0]

    def test_correct_outcomes_achieve_max_cut(self):
        workload = qaoa_maxcut(6, depth=1)
        edges = workload.metadata["edges"]
        max_cut = workload.metadata["max_cut"]
        for outcome in workload.correct_outcomes:
            assert cut_size(outcome, edges) == max_cut

    def test_path_maxcut_is_alternating(self):
        workload = qaoa_maxcut(5, depth=1)
        assert set(workload.correct_outcomes) == {"01010", "10101"}

    def test_deeper_is_better(self):
        """Higher p concentrates more mass on the solutions."""
        shallow = qaoa_maxcut(8, depth=1)
        deep = qaoa_maxcut(8, depth=4)
        assert (
            deep.ideal_success_probability()
            > shallow.ideal_success_probability()
        )

    def test_angles_cached(self):
        a = qaoa_maxcut(6, depth=2)
        b = qaoa_maxcut(6, depth=2)
        assert a.metadata["gammas"] == b.metadata["gammas"]

    def test_two_qubit_gate_count_table2(self):
        """Table 2: QAOA-n at depth p has p*(n-1) two-qubit gates."""
        workload = qaoa_maxcut(10, depth=2)
        assert workload.circuit.num_two_qubit_gates() == 2 * 9

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            qaoa_maxcut(1)
        with pytest.raises(WorkloadError):
            qaoa_maxcut(4, depth=0)
        with pytest.raises(WorkloadError):
            qaoa_maxcut(4, edges=[(0, 9)])


class TestProbe:
    def test_probe_states_available(self):
        workload = probe_circuit(3, probe_state="plus")
        assert workload.metadata["probe_ideal_p1"] == pytest.approx(0.5)

    def test_probe_one_state(self):
        workload = probe_circuit(1, probe_state="one")
        assert workload.metadata["probe_ideal_p1"] == pytest.approx(1.0)

    def test_unknown_state(self):
        with pytest.raises(WorkloadError):
            probe_circuit(2, probe_state="sideways")

    def test_measure_count(self):
        assert probe_circuit(7).circuit.num_measurements == 7


class TestSuite:
    def test_paper_suite_complete(self):
        suite = paper_suite()
        assert [w.name for w in suite] == list(PAPER_SUITE_NAMES)

    def test_small_suite_loads(self):
        assert len(small_suite()) >= 3

    def test_workload_by_name_unknown(self):
        with pytest.raises(WorkloadError):
            workload_by_name("Shor-2048")

    def test_workload_validation(self):
        from repro.circuits import QuantumCircuit

        with pytest.raises(WorkloadError):
            Workload("bad", QuantumCircuit(2), ("00",))  # no measurements
        qc = QuantumCircuit(2).measure_all()
        with pytest.raises(WorkloadError):
            Workload("bad", qc, ("0",))  # wrong outcome width
