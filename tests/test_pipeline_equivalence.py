"""Tests for the staged compiler pipeline (route-once/retarget-many).

The load-bearing invariants:

* stage-cached compilation is **bit-for-bit identical** to the uncached
  (legacy monolithic) path — routing is a pure function of its content
  key, so reuse can never change a plan;
* within a plan, a ``(body, initial layout)`` pair is routed at most
  once, no matter how many CPMs retarget onto it;
* ``MeasureRetarget`` never alters the routed body it retargets.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.compiler import (
    CompilerPipeline,
    Layout,
    compile_cpm,
    pool_layouts,
    transpile,
)
from repro.compiler.pipeline import STAGE_ROUTE, aggregate_stats
from repro.compiler.transpile import (
    reset_transpile_call_count,
    transpile_call_count,
)
from repro.core import JigSaw, JigSawConfig, JigSawM, JigSawMConfig
from repro.exceptions import CompilationError
from repro.runtime import CompilationCache, executable_fingerprint
from repro.runtime.fingerprint import body_fingerprint, device_fingerprint
from repro.workloads import bv, ghz, qaoa_maxcut
from tests.conftest import make_line_device, make_varied_line_device


@pytest.fixture(scope="module")
def device():
    return make_varied_line_device(num_qubits=8)


@pytest.fixture(scope="module")
def workload_circuits():
    return [
        ghz(6).circuit,
        bv(6).circuit,
        qaoa_maxcut(6, depth=1).circuit,
    ]


def _fingerprints(plan):
    return [
        executable_fingerprint(e)
        for e in [plan.global_executable] + plan.cpm_executables
    ]


def _eps_values(plan):
    return [e.eps for e in [plan.global_executable] + plan.cpm_executables]


class TestStageCacheEquivalence:
    """Cached and uncached compilation must be interchangeable."""

    def test_transpile_bit_for_bit(self, device, workload_circuits):
        for circuit in workload_circuits:
            cached = transpile(
                circuit, device, seed=7,
                pipeline=CompilerPipeline(device, cache=CompilationCache()),
            )
            uncached = transpile(
                circuit, device, seed=7,
                pipeline=CompilerPipeline(
                    device, cache=CompilationCache.disabled()
                ),
            )
            assert executable_fingerprint(cached) == executable_fingerprint(
                uncached
            )
            assert cached.eps == uncached.eps
            assert cached.num_swaps == uncached.num_swaps

    def test_compile_cpm_bit_for_bit(self, device, workload_circuits):
        for circuit in workload_circuits:
            global_exec = transpile(circuit, device, seed=3)
            cpm = circuit.with_measured_subset([1, 2])
            results = []
            for cache in (CompilationCache(), CompilationCache.disabled()):
                pipeline = CompilerPipeline(device, cache=cache)
                results.append(
                    compile_cpm(
                        cpm, device, global_exec, recompile=True,
                        attempts=3, pipeline=pipeline,
                    )
                )
            assert executable_fingerprint(results[0]) == executable_fingerprint(
                results[1]
            )
            assert results[0].eps == results[1].eps

    def test_repeat_compile_hits_route_cache(self, device):
        pipeline = CompilerPipeline(device, cache=CompilationCache())
        circuit = ghz(6).circuit
        first = pipeline.compile(circuit, seed=11, attempts=4)
        calls_after_first = pipeline.stats.get("route_calls")
        second = pipeline.compile(circuit, seed=11, attempts=4)
        assert executable_fingerprint(first) == executable_fingerprint(second)
        # Same seed -> same layouts -> every routing replays from cache.
        assert pipeline.stats.get("route_calls") == calls_after_first
        assert pipeline.stats.get("route_hits") > 0


class TestPlanEquivalence:
    """JigSaw/JigSaw-M plans: pipeline path == legacy recompute path."""

    @pytest.mark.parametrize("scheme", ["jigsaw", "jigsaw_m"])
    def test_plans_bit_for_bit(self, device, workload_circuits, scheme):
        runner_cls, config_cls = (
            (JigSaw, JigSawConfig)
            if scheme == "jigsaw"
            else (JigSawM, JigSawMConfig)
        )
        for circuit in workload_circuits:
            cached_runner = runner_cls(
                device, config_cls(exact=True), seed=9
            )
            legacy_runner = runner_cls(
                device, config_cls(exact=True), seed=9,
                cache=CompilationCache.disabled(),
            )
            plan_a = cached_runner.plan(circuit, total_trials=16_384)
            plan_b = legacy_runner.plan(circuit, total_trials=16_384)
            assert _fingerprints(plan_a) == _fingerprints(plan_b)
            assert _eps_values(plan_a) == _eps_values(plan_b)
            assert plan_a.subsets == plan_b.subsets
            assert (plan_a.global_trials, plan_a.trials_per_cpm) == (
                plan_b.global_trials, plan_b.trials_per_cpm
            )

    def test_recompile_disabled_matches(self, device):
        circuit = ghz(6).circuit
        config = JigSawConfig(exact=True, recompile_cpms=False)
        plan_a = JigSaw(device, config, seed=2).plan(circuit, 8_192)
        plan_b = JigSaw(
            device, config, seed=2, cache=CompilationCache.disabled()
        ).plan(circuit, 8_192)
        assert _fingerprints(plan_a) == _fingerprints(plan_b)
        for exe in plan_a.cpm_executables:
            assert exe.initial_layout == plan_a.global_executable.initial_layout


class TestRouteOnce:
    def test_each_body_layout_pair_routed_at_most_once(self, device):
        runner = JigSawM(device, JigSawMConfig(exact=True), seed=0)
        runner.plan(ghz(6).circuit, total_trials=16_384)
        stats = runner.pipeline.stats
        # Every route call created a distinct stage entry: no key was
        # ever routed twice.
        assert stats.get("route_calls") == runner.pipeline.cache.stage_entries(
            STAGE_ROUTE
        )
        # 24 CPMs retargeted onto a handful of routings.
        assert stats.get("retargets") > 4 * stats.get("route_calls")
        assert stats.get("route_hits") > 0

    def test_replanning_only_routes_new_layouts(self, device):
        # A second plan re-explores global placement from its own seeds
        # (possibly proposing a few layouts never seen before) but every
        # CPM routing — the bulk — replays from the stage cache, and no
        # key is ever routed twice.
        config = JigSawMConfig(exact=True)
        runner = JigSawM(device, config, seed=0)
        runner.plan(ghz(6).circuit, total_trials=16_384)
        calls = runner.pipeline.stats.get("route_calls")
        runner.plan(ghz(6).circuit, total_trials=4_096)
        new_calls = runner.pipeline.stats.get("route_calls") - calls
        assert new_calls <= config.compile_attempts
        assert runner.pipeline.stats.get(
            "route_calls"
        ) == runner.pipeline.cache.stage_entries(STAGE_ROUTE)

    def test_legacy_path_routes_strictly_more(self, device):
        cached = JigSawM(device, JigSawMConfig(exact=True), seed=0)
        legacy = JigSawM(
            device, JigSawMConfig(exact=True), seed=0,
            cache=CompilationCache.disabled(),
        )
        cached.plan(ghz(6).circuit, total_trials=16_384)
        legacy.plan(ghz(6).circuit, total_trials=16_384)
        assert (
            legacy.pipeline.stats.get("route_calls")
            >= 3 * cached.pipeline.stats.get("route_calls")
        )


_GATE_NAMES = st.sampled_from(["h", "x", "t", "s", "cx", "cz"])


@st.composite
def body_with_layout(draw):
    """A small measurement-free body plus a random initial layout."""
    num_qubits = draw(st.integers(min_value=2, max_value=4))
    qc = QuantumCircuit(num_qubits)
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        name = draw(_GATE_NAMES)
        if name in ("cx", "cz"):
            a = draw(st.integers(min_value=0, max_value=num_qubits - 1))
            b = draw(
                st.integers(min_value=0, max_value=num_qubits - 1).filter(
                    lambda x: x != a
                )
            )
            getattr(qc, name)(a, b)
        else:
            getattr(qc, name)(
                draw(st.integers(min_value=0, max_value=num_qubits - 1))
            )
    physical = draw(
        st.permutations(range(8)).map(lambda perm: perm[:num_qubits])
    )
    return qc, Layout({l: p for l, p in enumerate(physical)})


class TestMeasureRetarget:
    @settings(max_examples=40, deadline=None)
    @given(body_with_layout(), st.integers(min_value=1, max_value=4))
    def test_retarget_never_alters_routed_body(self, pair, subset_size):
        body, layout = pair
        device = make_varied_line_device(num_qubits=8)
        pipeline = CompilerPipeline(device)
        routed = pipeline.routed_body(body, body_fingerprint(body), layout)
        before = routed.physical_body.instructions
        qubits = list(range(min(subset_size, body.num_qubits)))
        circuit = body.copy()
        for clbit, qubit in enumerate(qubits):
            circuit.measure(qubit, clbit)
        physical = pipeline.retarget(routed, circuit)
        # The routed body is untouched: same instruction tuple, still
        # measurement-free.
        assert routed.physical_body.instructions == before
        assert not routed.physical_body.measurements
        # The retargeted schedule is the body plus terminal measurements
        # on each logical qubit's resting position.
        assert physical.instructions[: len(before)] == before
        for ins in physical.measurements:
            logical = routed.final_layout.logical(ins.qubits[0])
            assert logical == qubits[ins.clbits[0]]

    @settings(max_examples=20, deadline=None)
    @given(body_with_layout())
    def test_routing_is_pure_function_of_content(self, pair):
        body, layout = pair
        device = make_varied_line_device(num_qubits=8)
        fp = body_fingerprint(body)
        a = CompilerPipeline(device, cache=CompilationCache.disabled())
        b = CompilerPipeline(device, cache=CompilationCache.disabled())
        routed_a = a.routed_body(body, fp, layout)
        routed_b = b.routed_body(body, fp, layout)
        assert routed_a.physical_body == routed_b.physical_body
        assert routed_a.final_layout == routed_b.final_layout
        assert routed_a.num_swaps == routed_b.num_swaps
        assert routed_a.gate_eps == routed_b.gate_eps


class TestPoolLayouts:
    def test_pool_is_deterministic(self, device):
        body = ghz(6).circuit.remove_measurements()
        a = pool_layouts(body, device, pool_size=3, readout_weight=4.0)
        b = pool_layouts(body, device, pool_size=3, readout_weight=4.0)
        assert a == b
        assert len(a) <= 3

    def test_pool_is_measured_set_agnostic(self, device):
        circuit = ghz(6).circuit
        bodies = [
            circuit.with_measured_subset([0, 1]).remove_measurements(),
            circuit.with_measured_subset([3, 4, 5]).remove_measurements(),
        ]
        pools = [
            pool_layouts(body, device, pool_size=3, readout_weight=4.0)
            for body in bodies
        ]
        assert pools[0] == pools[1]
        assert body_fingerprint(bodies[0]) == body_fingerprint(bodies[1])


class TestDeviceContentKeys:
    """Stage artifacts key on device *content*, never on the bare name."""

    def test_same_name_different_calibration_never_shares(self):
        noisy = make_line_device(num_qubits=6, gate_2q=0.01, name="twin")
        quiet = make_line_device(num_qubits=6, gate_2q=0.001, name="twin")
        assert device_fingerprint(noisy) != device_fingerprint(quiet)
        shared = CompilationCache()
        exe_a = transpile(
            ghz(4).circuit, noisy, seed=0,
            pipeline=CompilerPipeline(noisy, cache=shared),
        )
        exe_b = transpile(
            ghz(4).circuit, quiet, seed=0,
            pipeline=CompilerPipeline(quiet, cache=shared),
        )
        # Same routing problem modulo calibration: the cached gate-EPS of
        # one device must not leak into the other through the shared store.
        assert exe_a.eps != exe_b.eps

    def test_pipeline_rejects_content_mismatched_device(self):
        noisy = make_line_device(num_qubits=6, gate_2q=0.01, name="twin")
        quiet = make_line_device(num_qubits=6, gate_2q=0.001, name="twin")
        pipeline = CompilerPipeline(noisy)
        with pytest.raises(CompilationError):
            transpile(ghz(4).circuit, quiet, seed=0, pipeline=pipeline)

    def test_equal_content_is_accepted(self):
        a = make_line_device(num_qubits=6)
        b = make_line_device(num_qubits=6)
        pipeline = CompilerPipeline(a)
        assert pipeline.matches_device(b)
        exe = transpile(ghz(4).circuit, b, seed=0, pipeline=pipeline)
        assert exe.eps > 0


class TestCounters:
    def test_shim_counts_compiles(self, device):
        reset_transpile_call_count()
        transpile(ghz(6).circuit, device, seed=0)
        assert transpile_call_count() == 1
        global_exec = transpile(ghz(6).circuit, device, seed=0)
        compile_cpm(
            ghz(6).circuit.with_measured_subset([0, 1]), device, global_exec
        )
        assert transpile_call_count() == 3
        reset_transpile_call_count()
        assert transpile_call_count() == 0

    def test_aggregate_has_per_stage_counters(self, device):
        reset_transpile_call_count()
        transpile(ghz(6).circuit, device, seed=0)
        stats = aggregate_stats()
        for counter in ("compiles", "place_runs", "route_calls",
                        "retargets", "eps_evals", "selects"):
            assert stats.get(counter, 0) > 0, counter

    def test_runner_surfaces_stage_stats(self, device):
        runner = JigSaw(device, JigSawConfig(exact=True), seed=1)
        runner.plan(ghz(6).circuit, total_trials=8_192)
        stats = runner.pipeline_stats()
        assert stats["counters"]["route_calls"] > 0
        assert stats["stages"]["route"]["hits"] > 0
        assert stats["stages"]["route"]["entries"] > 0

    def test_cache_stats_namespace_is_separate(self, device):
        cache = CompilationCache()
        runner = JigSaw(device, JigSawConfig(exact=True), seed=1, cache=cache)
        runner.plan(ghz(6).circuit, total_trials=8_192)
        stats = cache.stats()
        # Stage traffic never perturbs the plan-level hit/miss counters.
        assert stats["misses"] == 1 and stats["hits"] == 0
        assert stats["stages"]["route"]["misses"] > 0
        assert stats["stage_entries"] > 0
        assert len(cache) == 1
