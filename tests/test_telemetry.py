"""The telemetry spine: metrics registry, tracer, exporters, adapters.

Four layers under test:

* the instruments (`Counter`/`Gauge`/`Histogram`) and their registry
  composition (attach/merge, thread safety);
* the tracer (hierarchy, contextvar propagation, cross-thread spans,
  the disabled null path);
* the exporters (JSONL, Chrome trace-event JSON, Prometheus text, the
  ASCII tree);
* the integration seams: a traced service job yields one connected
  span tree from admission to finish, a traced sweep nests its
  compile-once/bind-many spans, the legacy ``*_stats()`` surfaces agree
  with the unified registry snapshot, and tracing never changes
  payloads.
"""

import json
import threading

import pytest

from repro.devices import device_by_name
from repro.runtime import Session
from repro.service import MitigationService
from repro.service.tier import ServiceSupervisor
from repro.service.tier.events import JobEventLog
from repro.telemetry import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_TRACER,
    Span,
    Tracer,
    chrome_trace,
    current_span,
    get_tracer,
    prometheus_text,
    render_trace_tree,
    spans_to_jsonl,
    trace_document,
    use_tracer,
)
from repro.workloads import workload_by_name


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


class TestInstruments:
    def test_counter(self):
        counter = Counter("c")
        counter.add()
        counter.add(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_gauge(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        gauge.add(0.5)
        assert gauge.value == 3.0

    def test_histogram_snapshot_shape(self):
        hist = Histogram(bounds=[0.1, 1.0])
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["buckets"] == {"le_0.1": 1, "le_1": 1, "inf": 1}
        assert snap["min_seconds"] == 0.05
        assert snap["max_seconds"] == 5.0
        assert snap["total_seconds"] == pytest.approx(5.55)
        assert set(snap["quantiles"]) == {"p50", "p95", "p99"}

    def test_quantiles_interpolate_within_bucket(self):
        hist = Histogram(bounds=[1.0, 2.0, 4.0])
        for value in (1.1, 1.5, 1.9, 3.0):
            hist.observe(value)
        # p50 lands in the (1, 2] bucket; interpolation stays inside it
        # and inside the observed range.
        p50 = hist.quantile(0.5)
        assert 1.1 <= p50 <= 1.9
        # p99 lands in the (2, 4] bucket, clamped to the observed max.
        assert hist.quantile(0.99) <= 3.0
        assert hist.quantile(0.0) == pytest.approx(1.1)
        assert hist.quantile(1.0) == pytest.approx(3.0)

    def test_quantile_empty_and_bad_input(self):
        hist = Histogram()
        assert hist.quantile(0.5) is None
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_quantile_single_observation(self):
        hist = Histogram()
        hist.observe(0.25)
        for q in (0.5, 0.95, 0.99):
            assert hist.quantile(q) == pytest.approx(0.25)

    def test_merge(self):
        a = Histogram(bounds=[1.0])
        b = Histogram(bounds=[1.0])
        a.observe(0.5)
        b.observe(2.0)
        b.observe(0.25)
        a.merge(b)
        snap = a.snapshot()
        assert snap["count"] == 3
        assert snap["buckets"] == {"le_1": 2, "inf": 1}
        assert snap["min_seconds"] == 0.25
        assert snap["max_seconds"] == 2.0

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=[1.0]).merge(Histogram(bounds=[2.0]))

    def test_default_bounds_are_log_spaced(self):
        assert DEFAULT_LATENCY_BOUNDS[0] == pytest.approx(1e-4)
        ratios = [
            DEFAULT_LATENCY_BOUNDS[i + 1] / DEFAULT_LATENCY_BOUNDS[i]
            for i in range(len(DEFAULT_LATENCY_BOUNDS) - 1)
        ]
        assert all(r == pytest.approx(4.0) for r in ratios)


class TestRegistry:
    def test_instruments_are_singletons_per_name(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_snapshot_merges_children_by_sum(self):
        parent = MetricsRegistry()
        for _ in range(2):
            child = MetricsRegistry()
            child.counter("work.items").add(3)
            child.histogram("work.latency").observe(0.5)
            parent.attach(child)
        parent.counter("work.items").add(1)
        snap = parent.snapshot()
        assert snap["counters"]["work.items"] == 7
        assert snap["histograms"]["work.latency"]["count"] == 2

    def test_attach_prefix_namespaces_child(self):
        parent = MetricsRegistry()
        child = MetricsRegistry()
        child.counter("hits").add(2)
        parent.attach(child, prefix="cache")
        assert parent.counter_values() == {"cache.hits": 2}

    def test_attach_dedups_and_rejects_self(self):
        parent = MetricsRegistry()
        child = MetricsRegistry()
        child.counter("n").add(1)
        parent.attach(child)
        parent.attach(child)  # second attach is a no-op
        assert parent.counter_values()["n"] == 1
        with pytest.raises(ValueError):
            parent.attach(parent)

    def test_diamond_attachment_counts_once(self):
        # Two engines attach one shared registry; the supervisor attaches
        # both engines — the shared child must merge exactly once.
        shared = MetricsRegistry()
        shared.counter("cache.hits").add(5)
        top = MetricsRegistry()
        for _ in range(2):
            engine = MetricsRegistry()
            engine.attach(shared)
            top.attach(engine)
        assert top.counter_values()["cache.hits"] == 5

    def test_thread_hammer(self):
        registry = MetricsRegistry()
        threads = 8
        per_thread = 2_000
        barrier = threading.Barrier(threads)

        def work():
            barrier.wait()
            counter = registry.counter("hammer.count")
            hist = registry.histogram("hammer.lat", bounds=[0.5])
            for i in range(per_thread):
                counter.add(1)
                registry.gauge("hammer.gauge").add(1.0)
                hist.observe(0.25 if i % 2 else 0.75)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        snap = registry.snapshot()
        total = threads * per_thread
        assert snap["counters"]["hammer.count"] == total
        assert snap["gauges"]["hammer.gauge"] == pytest.approx(total)
        assert snap["histograms"]["hammer.lat"]["count"] == total


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_default_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything") as span:
            assert span is None
        assert NULL_TRACER.spans() == []

    def test_use_tracer_scopes_activation(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with get_tracer().span("op"):
                pass
        assert get_tracer() is NULL_TRACER
        assert [s.name for s in tracer.spans()] == ["op"]

    def test_nesting_via_contextvar(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        assert current_span() is None
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id

    def test_deterministic_ids(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.span_id for s in tracer.spans()] == ["s000001", "s000002"]
        assert tracer.new_trace_id() == "t000003"

    def test_explicit_parent_wins_over_context(self):
        tracer = Tracer()
        root = tracer.start_span("root", trace_id=tracer.new_trace_id())
        with tracer.span("other"):
            with tracer.span("child", parent=root) as child:
                assert child.parent_id == root.span_id
                assert child.trace_id == root.trace_id

    def test_cross_thread_start_end(self):
        tracer = Tracer()
        span = tracer.start_span("queue_wait", trace_id="t42")

        def closer():
            tracer.end_span(span, worker="w0")

        thread = threading.Thread(target=closer)
        thread.start()
        thread.join()
        (filed,) = tracer.spans()
        assert filed.duration is not None
        assert filed.attrs["worker"] == "w0"
        assert filed.trace_id == "t42"

    def test_end_span_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start_span("once")
        tracer.end_span(span)
        first = span.duration
        tracer.end_span(span)
        assert span.duration == first
        assert len(tracer.spans()) == 1

    def test_record_post_hoc(self):
        tracer = Tracer()
        root = tracer.start_span("root")
        tracer.record("execute", parent=root, start=1.0, duration=2.0, n=3)
        (span,) = tracer.spans()
        assert (span.start, span.duration) == (1.0, 2.0)
        assert span.parent_id == root.span_id
        assert span.attrs == {"n": 3}

    def test_exception_marks_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "RuntimeError"
        assert span.duration is not None

    def test_bounded_span_store_drops_oldest(self):
        tracer = Tracer(max_spans=5)
        for i in range(8):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.dropped == 3
        assert [s.name for s in tracer.spans()] == [
            "s3", "s4", "s5", "s6", "s7",
        ]

    def test_spans_for_orders_by_start(self):
        tracer = Tracer()
        root = tracer.start_span("root", trace_id="tX")
        tracer.record("late", parent=root, start=10.0, duration=1.0)
        tracer.record("early", parent=root, start=5.0, duration=1.0)
        assert [s.name for s in tracer.spans_for("tX")] == ["early", "late"]
        assert tracer.spans_for(None) == []


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def _sample_spans():
    tracer = Tracer()
    with tracer.span("job", job_id="j1") as root:
        with tracer.span("prepare"):
            pass
        with tracer.span("execute", requests=5):
            pass
    return root, tracer.spans()


class TestExporters:
    def test_jsonl_round_trip(self):
        _, spans = _sample_spans()
        lines = spans_to_jsonl(spans).splitlines()
        rows = [json.loads(line) for line in lines]
        assert len(rows) == 3
        assert {row["name"] for row in rows} == {"job", "prepare", "execute"}
        assert all(row["duration"] is not None for row in rows)

    def test_chrome_trace_shape(self):
        root, spans = _sample_spans()
        document = json.loads(json.dumps(chrome_trace(spans)))
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert len(events) == 3
        assert meta and meta[0]["name"] == "thread_name"
        # Timestamps are rebased to the earliest span and carried in us.
        assert min(e["ts"] for e in events) == 0.0
        job = next(e for e in events if e["name"] == "job")
        assert job["args"]["trace_id"] == root.trace_id
        assert job["args"]["job_id"] == "j1"
        assert all(e["dur"] >= 0 for e in events)

    def test_trace_document_round_trips_hierarchy(self):
        _, spans = _sample_spans()
        document = trace_document(spans, job_id="j1")
        again = json.loads(json.dumps(document))
        assert again["job_id"] == "j1"
        assert len(again["spans"]) == 3
        by_id = {row["span_id"]: row for row in again["spans"]}
        children = [
            row for row in again["spans"] if row["parent_id"] is not None
        ]
        assert children
        assert all(row["parent_id"] in by_id for row in children)

    def test_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("engine.batches").add(2)
        registry.gauge("queue.depth").set(3)
        hist = registry.histogram("tier.execute", bounds=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(9.0)
        text = prometheus_text(registry.snapshot())
        lines = text.splitlines()
        assert "# TYPE repro_engine_batches counter" in lines
        assert "repro_engine_batches 2" in lines
        assert "repro_queue_depth 3.0" in lines
        # Cumulative buckets, ending at +Inf == count.
        assert 'repro_tier_execute_bucket{le="0.1"} 1' in lines
        assert 'repro_tier_execute_bucket{le="1.0"} 2' in lines
        assert 'repro_tier_execute_bucket{le="+Inf"} 3' in lines
        assert "repro_tier_execute_count 3" in lines

    def test_render_trace_tree(self):
        _, spans = _sample_spans()
        text = render_trace_tree(spans)
        lines = text.splitlines()
        assert len(lines) == 3
        assert "job job_id=j1" in lines[0]
        assert lines[1].endswith("  prepare")
        assert "execute requests=5" in lines[2]
        assert render_trace_tree([]) == "(no spans)"

    def test_render_trace_tree_orphans_become_roots(self):
        span = Span("t1", "s9", "missing-parent", "lonely", 0.0, {})
        span.duration = 1.0
        assert "lonely" in render_trace_tree([span])


# ---------------------------------------------------------------------------
# Event-log ring buffer
# ---------------------------------------------------------------------------


class TestEventLogRing:
    def test_truncation_keeps_head_and_tail(self):
        log = JobEventLog("job-x", head_events=2, max_events=3)
        for i in range(10):
            log.append("retrying", attempt=i)
        log.append("done")
        events = log.snapshot()
        # Head: the first two events. Tail: the last three appended.
        assert [e.seq for e in events] == [1, 2, 9, 10, 11]
        assert log.truncated == 6
        assert log.last_seq == 11
        assert log.closed

    def test_watch_skips_dropped_middle(self):
        log = JobEventLog("job-y", head_events=1, max_events=2)
        for i in range(6):
            log.append("retrying", attempt=i)
        log.append("done")
        seen = [e.seq for e in log.watch(after_seq=0, timeout=1.0)]
        assert seen == [1, 6, 7]  # head, then the surviving ring tail

    def test_watch_after_seq_and_timeout(self):
        log = JobEventLog("job-z")
        log.append("queued")
        log.append("running")
        stream = log.watch(after_seq=1, timeout=0.05)
        assert next(stream).kind == "running"
        with pytest.raises(TimeoutError):
            next(stream)

    def test_unbounded_semantics_within_cap(self):
        log = JobEventLog("job-w")
        for _ in range(5):
            log.append("running")
        assert [e.seq for e in log.snapshot()] == [1, 2, 3, 4, 5]
        assert log.truncated == 0


# ---------------------------------------------------------------------------
# Integration: traced jobs, sweeps, and stats consistency
# ---------------------------------------------------------------------------


def _span_children(spans):
    children = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    return children


class TestTracedService:
    @pytest.fixture(scope="class")
    def traced_run(self):
        supervisor = ServiceSupervisor(workers=2, tracing=True)
        with supervisor:
            job = supervisor.submit(
                {
                    "tenant": "alice",
                    "workload": "GHZ-4",
                    "scheme": "jigsaw",
                    "total_trials": 2048,
                    "seed": 3,
                }
            )
            supervisor.wait(job, timeout=120)
            resubmit = supervisor.submit(
                {
                    "tenant": "bob",
                    "workload": "GHZ-4",
                    "scheme": "jigsaw",
                    "total_trials": 2048,
                    "seed": 3,
                }
            )
            supervisor.wait(resubmit, timeout=120)
            spans = supervisor.job_trace(job)
            memo_spans = supervisor.job_trace(resubmit)
            stats = supervisor.tier_stats()
            telemetry = supervisor.telemetry_snapshot()
        return job, spans, memo_spans, stats, telemetry

    def test_single_connected_tree(self, traced_run):
        job, spans, _, _, _ = traced_run
        assert spans, "tracing produced no spans"
        assert len({s.trace_id for s in spans}) == 1
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "job"
        assert root.attrs["job_id"] == job.job_id
        assert root.attrs["status"] == "done"
        by_id = {s.span_id for s in spans}
        assert all(
            s.parent_id in by_id for s in spans if s.parent_id is not None
        )

    def test_lifecycle_stages_present_in_order(self, traced_run):
        _, spans, _, _, _ = traced_run
        children = _span_children(spans)
        root = next(s for s in spans if s.parent_id is None)
        stages = sorted(children[root.span_id], key=lambda s: s.start)
        names = [s.name for s in stages]
        assert names == [
            "admission",
            "queue_wait",
            "prepare",
            "execute",
            "reconstruct",
            "finish",
        ]
        execute = stages[3]
        assert execute.attrs["batch_jobs"] >= 1
        assert execute.attrs["requests"] >= 1
        assert stages[1].attrs["worker"].startswith("worker-")

    def test_compile_spans_nest_under_prepare(self, traced_run):
        _, spans, _, _, _ = traced_run
        children = _span_children(spans)
        prepare = next(s for s in spans if s.name == "prepare")
        compiles = [
            s for s in children.get(prepare.span_id, [])
            if s.name == "compile"
        ]
        assert compiles, "no compile spans under prepare"
        stage_names = {
            child.name
            for compile_span in compiles
            for child in children.get(compile_span.span_id, [])
        }
        assert stage_names == {
            "compile.place",
            "compile.route",
            "compile.retarget",
            "compile.eps",
            "compile.select",
        }
        # Cache accounting annotates the stage spans: the plan's CPM
        # bodies re-route through the shared stage cache.
        route_attrs = [
            child.attrs
            for compile_span in compiles
            for child in children.get(compile_span.span_id, [])
            if child.name == "compile.route"
        ]
        assert any("cache_hits" in attrs for attrs in route_attrs)
        assert any("cache_misses" in attrs for attrs in route_attrs)

    def test_exports_as_valid_chrome_trace(self, traced_run):
        _, spans, _, _, _ = traced_run
        document = json.loads(json.dumps(trace_document(spans)))
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(events) == len(spans)
        assert all(
            isinstance(e["ts"], float) and e["ts"] >= 0 for e in events
        )

    def test_memoized_job_has_own_short_trace(self, traced_run):
        _, spans, memo_spans, _, _ = traced_run
        assert memo_spans
        assert {s.trace_id for s in memo_spans}.pop() != spans[0].trace_id
        root = next(s for s in memo_spans if s.parent_id is None)
        assert root.attrs["source"] == "memoized"
        names = {s.name for s in memo_spans}
        assert "admission" in names
        assert "prepare" not in names  # never executed

    def test_event_log_carries_trace_id(self, traced_run):
        job, spans, _, _, _ = traced_run
        # tier_stats/telemetry captured while the supervisor was open;
        # the event log keeps the trace id for the CLI to join on.
        assert spans[0].trace_id is not None

    def test_tier_stats_consistent_with_registry(self, traced_run):
        _, _, _, stats, telemetry = traced_run
        counters = telemetry["counters"]
        jobs = stats["jobs"]
        assert jobs["submitted"] == counters["tier.submitted"] == 2
        assert jobs["executed"] == counters["tier.executed"] == 1
        assert jobs["memoized"] == counters["tier.memoized"] == 1
        assert jobs["failed"] == counters["tier.failed"] == 0
        assert stats["registry"]["counters"] == counters
        # Worker engine counters sum to the registry's engine.* totals.
        engine_executed = sum(
            worker["engine"]["executed"] for worker in stats["workers"]
        )
        assert counters["engine.executed"] == engine_executed
        backend_requests = sum(
            worker["engine"]["backend"]["requests"]
            for worker in stats["workers"]
        )
        assert counters["backend.requests"] == backend_requests
        # The shared compiler cache folds in exactly once.
        assert (
            counters["cache.plan_misses"]
            == stats["compiler"]["plan_misses"]
        )
        # Latency histograms come from the same registry instruments.
        assert (
            stats["latency"]["stages"]["job_total"]["count"]
            == telemetry["histograms"]["tier.job_total"]["count"]
        )

    def test_worker_batches_registry_backed(self, traced_run):
        _, _, _, stats, telemetry = traced_run
        assert telemetry["counters"]["worker.batches"] == sum(
            worker["batches"] for worker in stats["workers"]
        )


class TestTracedSweep:
    def test_sweep_trace_shape_ten_points(self):
        device = device_by_name("toronto")
        workload = workload_by_name("QAOA-6 p1")
        points = [[0.1 * (i + 1), 0.2] for i in range(10)]
        tracer = Tracer()
        with Session(device, total_trials=1024) as session:
            with use_tracer(tracer):
                result = session.run_sweep("jigsaw", workload, points)
        assert len(result) == 10
        spans = tracer.spans()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        (root,) = by_name["sweep"]
        assert root.parent_id is None
        assert root.attrs == {"scheme": "jigsaw", "points": 10}
        (prepare,) = by_name["sweep.prepare"]
        assert prepare.parent_id == root.span_id
        assert prepare.attrs == {"scheme": "jigsaw", "points": 10}
        (bind,) = by_name["sweep.bind"]
        assert bind.parent_id is not None
        assert bind.attrs["points"] == 10
        (execute,) = by_name["sweep.execute"]
        assert execute.attrs["points"] == 10
        assert execute.attrs["requests"] >= 10
        assert len(by_name["sweep.finish"]) == 1
        # Compile-once: the single compile tree nests under the sweep's
        # prepare span (via the template), not one per point.
        compiles = by_name.get("compile", [])
        assert compiles
        assert len({s.trace_id for s in spans}) == 1

    def test_sweep_results_identical_with_tracing_off(self):
        device = device_by_name("toronto")
        workload = workload_by_name("QAOA-6 p1")
        points = [[0.3, 0.2], [0.5, 0.1]]
        with Session(device, total_trials=1024) as session:
            baseline = session.run_sweep("jigsaw", workload, points)
        tracer = Tracer()
        with Session(device, total_trials=1024) as session:
            with use_tracer(tracer):
                traced = session.run_sweep("jigsaw", workload, points)
        assert tracer.spans()
        for lhs, rhs in zip(baseline.output_pmfs, traced.output_pmfs):
            assert lhs.as_dict() == rhs.as_dict()


class TestDisabledPath:
    def test_untraced_supervisor_files_no_spans(self):
        supervisor = ServiceSupervisor(workers=1)
        with supervisor:
            job = supervisor.submit(
                {
                    "tenant": "t",
                    "workload": "BV-5",
                    "scheme": "baseline",
                    "total_trials": 1024,
                    "seed": 0,
                }
            )
            supervisor.wait(job, timeout=120)
            assert supervisor.tracer is NULL_TRACER
            assert supervisor.tracer.spans() == []
            assert supervisor.job_trace(job) == []
            assert job.trace is None and job.queue_span is None

    def test_untraced_session_files_no_spans(self):
        device = device_by_name("toronto")
        workload = workload_by_name("GHZ-4")
        with Session(device, total_trials=1024) as session:
            session.run_scheme("jigsaw", workload)
        assert get_tracer() is NULL_TRACER
        assert NULL_TRACER.spans() == []


class TestStatsConsistency:
    def test_session_surfaces_agree_with_registry(self):
        device = device_by_name("toronto")
        workload = workload_by_name("GHZ-4")
        with Session(device, total_trials=1024) as session:
            session.run_scheme("jigsaw", workload)
            session.run_scheme("baseline", workload)
            pipeline = session.pipeline_stats()["counters"]
            execution = session.execution_stats()
            cache = session.cache_stats()
            telemetry = session.telemetry_snapshot()
        counters = telemetry["counters"]
        for name, value in pipeline.items():
            assert counters[f"compiler.{name}"] == value, name
        assert counters["cache.plan_hits"] == cache["hits"]
        assert counters["cache.plan_misses"] == cache["misses"]
        for stage, row in cache["stages"].items():
            assert counters[f"cache.stage.{stage}.hits"] == row["hits"]
            assert counters[f"cache.stage.{stage}.misses"] == row["misses"]
        assert (
            counters["backend.statevector_evals"]
            == execution["statevector_evals"]
        )
        assert counters["backend.channel_evals"] == execution["channel_evals"]

    def test_service_stats_agree_with_registry(self):
        with MitigationService() as service:
            for seed in (0, 0, 1):
                service.submit(
                    {
                        "tenant": "t",
                        "workload": "GHZ-4",
                        "scheme": "baseline",
                        "total_trials": 1024,
                        "seed": seed,
                    }
                )
            service.drain()
            stats = service.service_stats()
            telemetry = service.telemetry_snapshot()
        counters = telemetry["counters"]
        jobs = stats["jobs"]
        assert jobs["submitted"] == counters["service.submitted"] == 3
        assert jobs["executed"] == counters["service.executed"]
        assert jobs["memoized"] == counters["service.memoized"]
        assert jobs["batches"] == counters["service.batches"]
        assert stats["registry"]["counters"] == counters
        for name, value in stats["backend"].items():
            if name == "coalesced_requests":
                continue  # derived, not a registry counter
            assert counters[f"backend.{name}"] == value, name
        assert (
            stats["compiler"]["plan_misses"] == counters["cache.plan_misses"]
        )

    def test_service_payloads_identical_with_tracing_on(self):
        spec = {
            "tenant": "t",
            "workload": "GHZ-4",
            "scheme": "jigsaw",
            "total_trials": 1024,
            "seed": 11,
        }
        with ServiceSupervisor(workers=1) as plain:
            job = plain.submit(dict(spec))
            plain.wait(job, timeout=120)
            untraced = plain.result(job)
        with ServiceSupervisor(workers=1, tracing=True) as traced:
            job = traced.submit(dict(spec))
            traced.wait(job, timeout=120)
            traced_payload = traced.result(job)
            assert traced.job_trace(job)
        assert untraced == traced_payload
