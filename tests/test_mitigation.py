"""Tests for matrix-based mitigation and the JigSaw+MBM combination."""

import numpy as np
import pytest

from repro.core import PMF
from repro.exceptions import MitigationError
from repro.mitigation import (
    MAX_MBM_QUBITS,
    apply_mitigation,
    calibration_matrix,
    jigsaw_with_mbm,
    mitigate_pmf,
    sampled_calibration_matrix,
)
from repro.noise import apply_confusions


def confusion(p01, p10):
    return np.array([[1 - p01, p10], [p01, 1 - p10]])


class TestCalibrationMatrix:
    def test_single_qubit_is_confusion(self):
        conf = confusion(0.1, 0.2)
        assert np.allclose(calibration_matrix([conf]), conf)

    def test_columns_sum_to_one(self):
        matrix = calibration_matrix([confusion(0.1, 0.2), confusion(0.05, 0.07)])
        assert np.allclose(matrix.sum(axis=0), 1.0)

    def test_matches_apply_confusions(self):
        confs = [confusion(0.1, 0.2), confusion(0.03, 0.08)]
        matrix = calibration_matrix(confs)
        rng = np.random.default_rng(1)
        dist = rng.random(4)
        dist /= dist.sum()
        assert np.allclose(matrix @ dist, apply_confusions(dist, confs))

    def test_qubit_limit(self):
        confs = [np.eye(2)] * (MAX_MBM_QUBITS + 1)
        with pytest.raises(MitigationError):
            calibration_matrix(confs)

    def test_empty_rejected(self):
        with pytest.raises(MitigationError):
            calibration_matrix([])

    def test_bad_shape_rejected(self):
        with pytest.raises(MitigationError):
            calibration_matrix([np.eye(3)])


class TestApplyMitigation:
    def test_exact_inverse_recovers_truth(self):
        confs = [confusion(0.08, 0.12), confusion(0.02, 0.05)]
        matrix = calibration_matrix(confs)
        truth = np.array([0.5, 0.0, 0.0, 0.5])
        observed = matrix @ truth
        recovered = apply_mitigation(observed, matrix)
        assert np.allclose(recovered, truth, atol=1e-10)

    def test_result_is_distribution(self):
        confs = [confusion(0.2, 0.3)]
        matrix = calibration_matrix(confs)
        recovered = apply_mitigation(np.array([0.4, 0.6]), matrix)
        assert np.all(recovered >= 0)
        assert recovered.sum() == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(MitigationError):
            apply_mitigation(np.ones(4) / 4, np.eye(2))


class TestSampledCalibration:
    def test_close_to_exact(self):
        confs = [confusion(0.1, 0.15), confusion(0.05, 0.08)]
        exact = calibration_matrix(confs)
        sampled = sampled_calibration_matrix(confs, shots_per_state=50_000, seed=0)
        assert np.allclose(sampled, exact, atol=0.01)

    def test_columns_are_distributions(self):
        confs = [confusion(0.1, 0.15)]
        sampled = sampled_calibration_matrix(confs, shots_per_state=100, seed=1)
        assert np.allclose(sampled.sum(axis=0), 1.0)

    def test_invalid_shots(self):
        with pytest.raises(MitigationError):
            sampled_calibration_matrix([np.eye(2)], shots_per_state=0)


class TestMitigatePmf:
    def test_recovers_clean_distribution(self):
        confs = [confusion(0.1, 0.2), confusion(0.05, 0.1)]
        truth = np.array([0.5, 0.0, 0.0, 0.5])
        observed = calibration_matrix(confs) @ truth
        noisy_pmf = PMF(
            {format(i, "02b"): float(p) for i, p in enumerate(observed)}
        )
        mitigated = mitigate_pmf(noisy_pmf, confs)
        assert mitigated.prob("00") == pytest.approx(0.5, abs=1e-9)
        assert mitigated.prob("11") == pytest.approx(0.5, abs=1e-9)
        assert mitigated.prob("01") == pytest.approx(0.0, abs=1e-9)

    def test_confusion_count_must_match(self):
        with pytest.raises(MitigationError):
            mitigate_pmf(PMF({"00": 1.0}), [np.eye(2)])


class TestJigSawWithMbm:
    def test_composition_improves_over_jigsaw(self):
        """Fig. 14: JigSaw + MBM is at least as good as JigSaw alone."""
        from repro.core import JigSaw, JigSawConfig
        from repro.metrics import probability_of_successful_trial
        from repro.noise import NoiseModel
        from repro.workloads import ghz
        from tests.conftest import make_varied_line_device

        device = make_varied_line_device(num_qubits=8)
        workload = ghz(6)
        jigsaw = JigSaw(device, JigSawConfig(exact=True), seed=4)
        result = jigsaw.run(workload.circuit, total_trials=16_384)
        noise = NoiseModel.from_device(device)
        combined = jigsaw_with_mbm(result, noise)
        pst_jigsaw = probability_of_successful_trial(
            result.output_pmf, workload.correct_outcomes
        )
        pst_combined = probability_of_successful_trial(
            combined, workload.correct_outcomes
        )
        assert pst_combined >= pst_jigsaw * 0.98

    def test_rejects_wide_outputs(self):
        from repro.core import JigSawResult

        class FakeResult:
            global_pmf = PMF({("0" * 20): 1.0})

        with pytest.raises(ValueError):
            jigsaw_with_mbm(FakeResult(), None)
