"""Shared fixtures: small deterministic devices and common circuits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.devices import Calibration, Device, ibmq_toronto, line_topology, ring_topology


def make_line_device(
    num_qubits: int = 6,
    readout: float = 0.03,
    crosstalk: float = 0.002,
    gate_1q: float = 0.0005,
    gate_2q: float = 0.01,
    name: str = "line",
) -> Device:
    """A line-topology device with uniform, hand-set calibration."""
    graph = line_topology(num_qubits)
    calibration = Calibration(
        p01=np.full(num_qubits, readout * 0.8),
        p10=np.full(num_qubits, readout * 1.2),
        crosstalk=np.full(num_qubits, crosstalk),
        gate_error_1q=np.full(num_qubits, gate_1q),
        gate_error_2q={
            (min(u, v), max(u, v)): gate_2q for u, v in graph.edges
        },
    )
    return Device(name, graph, calibration)


def make_varied_line_device(num_qubits: int = 8) -> Device:
    """A line device whose readout errors vary strongly across qubits."""
    graph = line_topology(num_qubits)
    # Alternate good/bad readout so recompilation has something to exploit.
    readout = np.array(
        [0.01 if q % 2 == 0 else 0.12 for q in range(num_qubits)]
    )
    calibration = Calibration(
        p01=readout * 0.9,
        p10=readout * 1.1,
        crosstalk=np.full(num_qubits, 0.003),
        gate_error_1q=np.full(num_qubits, 0.0005),
        gate_error_2q={
            (min(u, v), max(u, v)): 0.008 for u, v in graph.edges
        },
    )
    return Device("varied-line", graph, calibration)


@pytest.fixture
def line_device() -> Device:
    return make_line_device()

@pytest.fixture
def varied_device() -> Device:
    return make_varied_line_device()


@pytest.fixture(scope="session")
def toronto() -> Device:
    return ibmq_toronto()


@pytest.fixture
def ghz4() -> QuantumCircuit:
    qc = QuantumCircuit(4, name="ghz4")
    qc.h(0)
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.cx(2, 3)
    return qc.measure_all()


@pytest.fixture
def bell() -> QuantumCircuit:
    return QuantumCircuit(2, name="bell").h(0).cx(0, 1).measure_all()
