"""Tests for layout, placement, SABRE routing, EPS, and transpile."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.compiler import (
    Layout,
    candidate_layouts,
    expected_probability_of_success,
    gate_eps,
    readout_eps,
    route,
    transpile,
)
from repro.exceptions import CompilationError
from repro.sim import StatevectorSimulator
from tests.conftest import make_line_device


@pytest.fixture
def device():
    return make_line_device(num_qubits=6)


class TestLayout:
    def test_trivial(self):
        layout = Layout.trivial(3)
        assert layout.physical(2) == 2
        assert layout.logical(1) == 1

    def test_bijective(self):
        with pytest.raises(CompilationError):
            Layout({0: 1, 1: 1})

    def test_negative_rejected(self):
        with pytest.raises(CompilationError):
            Layout({0: -1})

    def test_swap_two_occupied(self):
        layout = Layout({0: 10, 1: 11})
        layout.apply_swap(10, 11)
        assert layout.physical(0) == 11
        assert layout.physical(1) == 10

    def test_swap_with_free_qubit(self):
        layout = Layout({0: 10})
        layout.apply_swap(10, 12)
        assert layout.physical(0) == 12
        assert not layout.hosts_logical(10)

    def test_missing_lookups_raise(self):
        layout = Layout({0: 5})
        with pytest.raises(CompilationError):
            layout.physical(3)
        with pytest.raises(CompilationError):
            layout.logical(0)

    def test_copy_is_independent(self):
        layout = Layout({0: 1, 1: 2})
        clone = layout.copy()
        clone.apply_swap(1, 2)
        assert layout.physical(0) == 1

    def test_equality(self):
        assert Layout({0: 3}) == Layout({0: 3})
        assert Layout({0: 3}) != Layout({0: 4})


class TestEps:
    def test_gate_eps_product(self, device):
        physical = QuantumCircuit(6).h(0).cx(0, 1)
        assert gate_eps(physical, device) == pytest.approx(
            (1 - 0.0005) * (1 - 0.01)
        )

    def test_swap_three_cnot_cost(self, device):
        physical = QuantumCircuit(6).swap(2, 3)
        assert gate_eps(physical, device) == pytest.approx((1 - 0.01) ** 3)

    def test_readout_eps_uses_simultaneous_width(self, device):
        one = QuantumCircuit(6, 1).measure(0, 0)
        three = QuantumCircuit(6, 3)
        for i in range(3):
            three.measure(i, i)
        per_bit_1 = readout_eps(one, device)
        per_bit_3 = readout_eps(three, device) ** (1 / 3)
        assert per_bit_3 < per_bit_1  # crosstalk penalty

    def test_emphasis_raises_readout_weight(self, device):
        physical = QuantumCircuit(6, 2).cx(0, 1).measure(0, 0).measure(1, 1)
        plain = expected_probability_of_success(physical, device, 1.0)
        emphasised = expected_probability_of_success(physical, device, 3.0)
        assert emphasised < plain  # readout factor < 1 gets cubed

    def test_negative_emphasis_rejected(self, device):
        with pytest.raises(CompilationError):
            expected_probability_of_success(QuantumCircuit(6), device, -1.0)


class TestPlacement:
    def test_layouts_cover_program(self, device, ghz4):
        layouts = candidate_layouts(ghz4, device, seed=0)
        for layout in layouts:
            assert set(layout.logical_qubits) == {0, 1, 2, 3}
            assert len(set(layout.physical_qubits)) == 4

    def test_too_large_program_rejected(self, device):
        big = QuantumCircuit(7).h(0).measure_all()
        with pytest.raises(CompilationError):
            candidate_layouts(big, device)

    def test_avoid_qubits_steers_placement(self, varied_device, ghz4):
        layouts = candidate_layouts(
            ghz4, varied_device, avoid_qubits=[0, 1, 2, 3], seed=1,
            num_candidates=4,
        )
        best = layouts[0]
        overlap = set(best.physical_qubits) & {0, 1, 2, 3}
        assert len(overlap) <= 2


class TestRouting:
    def test_adjacent_gates_no_swaps(self, device, ghz4):
        routed = route(ghz4, device, Layout.trivial(4), seed=0)
        assert routed.num_swaps == 0
        assert routed.final_layout == routed.initial_layout

    def test_distant_gate_inserts_swaps(self, device):
        qc = QuantumCircuit(2).cx(0, 1).measure_all()
        layout = Layout({0: 0, 1: 5})
        routed = route(qc, device, layout, seed=0)
        assert routed.num_swaps >= 4

    def test_all_gates_respect_coupling(self, device):
        qc = QuantumCircuit(4)
        qc.cx(0, 3).cx(1, 2).cx(0, 2).cx(3, 1)
        qc.measure_all()
        layout = Layout({0: 0, 1: 2, 2: 4, 3: 5})
        routed = route(qc, device, layout, seed=1)
        for ins in routed.physical.gates():
            if len(ins.qubits) == 2:
                assert device.are_coupled(*ins.qubits)

    def test_measurements_follow_final_layout(self, device):
        qc = QuantumCircuit(2).cx(0, 1).measure_all()
        layout = Layout({0: 0, 1: 3})
        routed = route(qc, device, layout, seed=0)
        for ins in routed.physical.measurements:
            logical = routed.final_layout.logical(ins.qubits[0])
            assert ins.clbits[0] == qc.measurement_map[logical]

    def test_routing_preserves_semantics(self):
        """Routed physical circuit must compute the same distribution."""
        device = make_line_device(num_qubits=5)
        qc = QuantumCircuit(4, name="scrambler")
        qc.h(0).cx(0, 2).cx(3, 1).rz(0.4, 2).cx(2, 3).h(3).cx(0, 3)
        qc.measure_all()
        layout = Layout({0: 0, 1: 2, 2: 3, 3: 4})
        routed = route(qc, device, layout, seed=2)
        sim = StatevectorSimulator()
        logical_dist = sim.ideal_distribution(qc)
        physical_dist = sim.ideal_distribution(routed.physical)
        assert set(logical_dist) == set(physical_dist)
        for key, value in logical_dist.items():
            assert physical_dist[key] == pytest.approx(value, abs=1e-9)

    def test_incomplete_layout_rejected(self, device, ghz4):
        with pytest.raises(CompilationError):
            route(ghz4, device, Layout({0: 0, 1: 1}), seed=0)

    def test_layout_outside_device_rejected(self, device, ghz4):
        with pytest.raises(CompilationError):
            route(ghz4, device, Layout({0: 0, 1: 1, 2: 2, 3: 99}), seed=0)


class TestTranspile:
    def test_executable_fields(self, device, ghz4):
        executable = transpile(ghz4, device, seed=0)
        assert executable.logical is ghz4
        assert executable.physical.num_qubits == device.num_qubits
        assert 0.0 < executable.eps <= 1.0
        assert len(executable.measured_physical_qubits) == 4

    def test_explicit_layouts_path(self, device, ghz4):
        executable = transpile(
            ghz4, device, initial_layouts=[Layout.trivial(4)], seed=0
        )
        assert executable.initial_layout == Layout.trivial(4)

    def test_empty_layout_list_rejected(self, device, ghz4):
        with pytest.raises(CompilationError):
            transpile(ghz4, device, initial_layouts=[])

    def test_invalid_attempts(self, device, ghz4):
        with pytest.raises(CompilationError):
            transpile(ghz4, device, attempts=0)

    def test_deterministic_for_seed(self, device, ghz4):
        a = transpile(ghz4, device, seed=11)
        b = transpile(ghz4, device, seed=11)
        assert a.final_layout == b.final_layout
        assert a.eps == pytest.approx(b.eps)

    def test_ideal_probabilities_cached_and_shared(self, device, ghz4):
        executable = transpile(ghz4, device, seed=0)
        probs = executable.ideal_probabilities()
        assert probs.shape == (16,)
        shared = np.ones(16) / 16
        executable.share_ideal_probabilities(shared)
        assert executable.ideal_probabilities() is shared

    def test_share_wrong_size_rejected(self, device, ghz4):
        executable = transpile(ghz4, device, seed=0)
        with pytest.raises(CompilationError):
            executable.share_ideal_probabilities(np.ones(8) / 8)
