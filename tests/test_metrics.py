"""Tests for the figures of merit (paper §5.5)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ReproError
from repro.metrics import (
    approximation_ratio,
    approximation_ratio_gap,
    cut_size,
    expected_cut,
    fidelity,
    hellinger,
    inference_strength,
    kl_divergence,
    probability_of_successful_trial,
    relative,
    total_variation_distance,
    workload_arg,
)
from repro.workloads import qaoa_maxcut


class TestPst:
    def test_counts_histogram(self):
        counts = {"00": 600, "01": 250, "11": 150}
        assert probability_of_successful_trial(counts, ["00"]) == pytest.approx(0.6)

    def test_multiple_correct_outcomes(self):
        dist = {"00": 0.4, "11": 0.35, "01": 0.25}
        assert probability_of_successful_trial(
            dist, ["00", "11"]
        ) == pytest.approx(0.75)

    def test_missing_outcome_counts_zero(self):
        assert probability_of_successful_trial({"01": 1.0}, ["00"]) == 0.0

    def test_requires_correct_outcomes(self):
        with pytest.raises(ReproError):
            probability_of_successful_trial({"0": 1.0}, [])

    def test_requires_mass(self):
        with pytest.raises(ReproError):
            probability_of_successful_trial({"0": 0.0}, ["0"])


class TestIst:
    def test_paper_definition(self):
        """Eq. 2: P(correct) / P(most frequent incorrect)."""
        dist = {"11": 0.5, "10": 0.25, "01": 0.15, "00": 0.10}
        assert inference_strength(dist, ["11"]) == pytest.approx(2.0)

    def test_strongest_correct_used(self):
        dist = {"00": 0.4, "11": 0.1, "01": 0.5}
        assert inference_strength(dist, ["00", "11"]) == pytest.approx(0.8)

    def test_no_incorrect_gives_inf(self):
        assert inference_strength({"0": 1.0}, ["0"]) == math.inf

    def test_ist_below_one_means_wrong_mode(self):
        dist = {"00": 0.3, "01": 0.7}
        assert inference_strength(dist, ["00"]) < 1.0


class TestDistances:
    def test_tvd_identical(self):
        dist = {"0": 0.4, "1": 0.6}
        assert total_variation_distance(dist, dist) == pytest.approx(0.0)

    def test_tvd_disjoint_is_one(self):
        assert total_variation_distance({"0": 1.0}, {"1": 1.0}) == pytest.approx(1.0)

    def test_fidelity_complement(self):
        p = {"0": 0.5, "1": 0.5}
        q = {"0": 0.75, "1": 0.25}
        assert fidelity(p, q) == pytest.approx(1.0 - 0.25)

    def test_hellinger_bounds(self):
        assert hellinger({"0": 1.0}, {"1": 1.0}) == pytest.approx(1.0)
        assert hellinger({"0": 1.0}, {"0": 1.0}) == pytest.approx(0.0)

    def test_kl_zero_for_identical(self):
        dist = {"0": 0.3, "1": 0.7}
        assert kl_divergence(dist, dist) == pytest.approx(0.0)

    def test_kl_positive(self):
        assert kl_divergence({"0": 1.0}, {"0": 0.5, "1": 0.5}) > 0.0

    def test_kl_invalid_epsilon(self):
        with pytest.raises(ReproError):
            kl_divergence({"0": 1.0}, {"0": 1.0}, epsilon=0.0)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=4, max_size=4),
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=4, max_size=4),
    )
    def test_tvd_properties(self, raw_p, raw_q):
        keys = ["00", "01", "10", "11"]
        p_total, q_total = sum(raw_p), sum(raw_q)
        p = {k: v / p_total for k, v in zip(keys, raw_p)}
        q = {k: v / q_total for k, v in zip(keys, raw_q)}
        tvd = total_variation_distance(p, q)
        assert 0.0 <= tvd <= 1.0
        assert tvd == pytest.approx(total_variation_distance(q, p))


class TestRelative:
    def test_ordinary_ratio(self):
        assert relative(0.6, 0.3) == pytest.approx(2.0)

    def test_zero_baseline(self):
        assert relative(0.5, 0.0) == math.inf
        assert relative(0.0, 0.0) == 1.0


class TestQaoaMetrics:
    def test_cut_size(self):
        # IBM order: rightmost char is qubit 0
        assert cut_size("01", [(0, 1)]) == 1
        assert cut_size("11", [(0, 1)]) == 0
        assert cut_size("0101", [(0, 1), (1, 2), (2, 3)]) == 3

    def test_cut_size_range_check(self):
        with pytest.raises(ReproError):
            cut_size("01", [(0, 5)])

    def test_expected_cut(self):
        dist = {"01": 0.5, "11": 0.5}
        assert expected_cut(dist, [(0, 1)]) == pytest.approx(0.5)

    def test_approximation_ratio(self):
        dist = {"01": 1.0}
        assert approximation_ratio(dist, [(0, 1)], 1.0) == pytest.approx(1.0)

    def test_arg_formula(self):
        """Eq. 4: 100 * (AR_ideal - AR_real) / AR_ideal."""
        assert approximation_ratio_gap(0.8, 0.6) == pytest.approx(25.0)

    def test_arg_zero_when_equal(self):
        assert approximation_ratio_gap(0.7, 0.7) == pytest.approx(0.0)

    def test_arg_invalid_ideal(self):
        with pytest.raises(ReproError):
            approximation_ratio_gap(0.0, 0.5)

    def test_workload_arg_ideal_is_zero(self):
        workload = qaoa_maxcut(5, depth=1)
        arg = workload_arg(workload, workload.ideal_distribution())
        assert arg == pytest.approx(0.0, abs=1e-9)

    def test_workload_arg_uniform_positive(self):
        workload = qaoa_maxcut(5, depth=1)
        uniform = {format(i, "05b"): 1 / 32 for i in range(32)}
        assert workload_arg(workload, uniform) > 0.0

    def test_workload_arg_requires_qaoa(self):
        from repro.workloads import ghz

        with pytest.raises(ReproError):
            workload_arg(ghz(3), {"000": 1.0})
