"""Tests for device coupling topologies."""

import networkx as nx
import pytest

from repro.devices import (
    falcon27,
    grid_topology,
    heavy_hex_topology,
    hummingbird65,
    line_topology,
    ring_topology,
    sycamore_grid,
    validate_topology,
)
from repro.exceptions import DeviceError


class TestGenerators:
    def test_line(self):
        graph = line_topology(5)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 4
        assert max(dict(graph.degree).values()) == 2

    def test_line_single_qubit(self):
        assert line_topology(1).number_of_nodes() == 1

    def test_line_invalid(self):
        with pytest.raises(DeviceError):
            line_topology(0)

    def test_ring(self):
        graph = ring_topology(6)
        assert graph.number_of_edges() == 6
        assert all(d == 2 for _, d in graph.degree)

    def test_ring_too_small(self):
        with pytest.raises(DeviceError):
            ring_topology(2)

    def test_grid(self):
        graph = grid_topology(3, 4)
        assert graph.number_of_nodes() == 12
        assert graph.number_of_edges() == 3 * 3 + 2 * 4

    def test_grid_invalid(self):
        with pytest.raises(DeviceError):
            grid_topology(0, 3)

    def test_heavy_hex_connected_low_degree(self):
        graph = heavy_hex_topology(3, 9)
        assert nx.is_connected(graph)
        assert max(dict(graph.degree).values()) <= 3

    def test_heavy_hex_invalid(self):
        with pytest.raises(DeviceError):
            heavy_hex_topology(0, 5)


class TestDeviceMaps:
    def test_falcon27_shape(self):
        graph = falcon27()
        assert graph.number_of_nodes() == 27
        assert graph.number_of_edges() == 28
        assert nx.is_connected(graph)
        # Heavy-hex family: degree at most 3.
        assert max(dict(graph.degree).values()) <= 3

    def test_hummingbird65_shape(self):
        graph = hummingbird65()
        assert graph.number_of_nodes() == 65
        assert nx.is_connected(graph)
        assert max(dict(graph.degree).values()) <= 3

    def test_sycamore_shape(self):
        graph = sycamore_grid()
        assert graph.number_of_nodes() == 53
        assert nx.is_connected(graph)

    def test_all_device_maps_validate(self):
        for factory in (falcon27, hummingbird65, sycamore_grid):
            validate_topology(factory())


class TestValidation:
    def test_empty_graph(self):
        with pytest.raises(DeviceError):
            validate_topology(nx.Graph())

    def test_non_contiguous_nodes(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 2])
        graph.add_edge(0, 2)
        with pytest.raises(DeviceError):
            validate_topology(graph)

    def test_disconnected(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        with pytest.raises(DeviceError):
            validate_topology(graph)

    def test_self_loop(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(2))
        graph.add_edge(0, 1)
        graph.add_edge(0, 0)
        with pytest.raises(DeviceError):
            validate_topology(graph)
