"""Tests for sharded execution: determinism, coalescing, budget accounting.

The contract under test (the tentpole invariant): a
:class:`~repro.runtime.parallel.ShardedBackend` produces **bit-for-bit**
the PMFs of the serial local backend under a fixed seed, at any worker
count, because seed streams are spawned per request index — never per
worker.
"""

import pytest

from repro.core import (
    JigSaw,
    JigSawConfig,
    JigSawM,
    JigSawMConfig,
    budget_report_for_plan,
    plan_trial_budget,
    split_trial_budget,
)
from repro.compiler.transpile import transpile
from repro.exceptions import SimulationError
from repro.noise.model import NoiseModel
from repro.runtime import (
    ExecutionRequest,
    LocalExactBackend,
    LocalSamplingBackend,
    Session,
    ShardedBackend,
)
from repro.workloads import ghz
from tests.conftest import make_varied_line_device


@pytest.fixture(scope="module")
def device():
    return make_varied_line_device(num_qubits=8)


@pytest.fixture(scope="module")
def noise_model(device):
    return NoiseModel.from_device(device)


@pytest.fixture(scope="module")
def ghz6():
    return ghz(6).circuit


def make_requests(device, ghz6, trials=400):
    executables = [
        transpile(ghz6, device, seed=0),
        transpile(ghz6.with_measured_subset([0, 1]), device, seed=1),
        transpile(ghz6.with_measured_subset([2, 3]), device, seed=2),
        transpile(ghz6.with_measured_subset([4, 5]), device, seed=3),
    ]
    return [ExecutionRequest(e, trials) for e in executables]


def exact_dicts(pmfs):
    return [pmf.as_dict() for pmf in pmfs]


class TestShardedDeterminism:
    """serial == workers=1 == workers=4, bit-for-bit (no approx)."""

    def test_sampled_serial_vs_sharded_worker_counts(
        self, device, noise_model, ghz6
    ):
        requests = make_requests(device, ghz6)
        serial = LocalSamplingBackend(
            noise_model=noise_model, seed=11
        ).execute(requests)
        for workers in (1, 4):
            sharded = ShardedBackend(
                LocalSamplingBackend(noise_model=noise_model, seed=11),
                workers=workers,
            ).execute(requests)
            assert exact_dicts(sharded) == exact_dicts(serial), workers

    def test_exact_serial_vs_sharded_with_coalescing(
        self, device, noise_model, ghz6
    ):
        requests = make_requests(device, ghz6)
        # Duplicate the batch so coalescing has something to merge.
        requests = requests + make_requests(device, ghz6)
        serial = LocalExactBackend(noise_model=noise_model).execute(requests)
        for workers in (1, 4):
            backend = ShardedBackend(
                LocalExactBackend(noise_model=noise_model), workers=workers
            )
            assert backend.coalesce  # auto-on for deterministic inners
            sharded = backend.execute(requests)
            assert exact_dicts(sharded) == exact_dicts(serial), workers
            assert backend.groups_evaluated < backend.requests_seen

    def test_sampled_coalescing_deterministic_across_workers(
        self, device, noise_model, ghz6
    ):
        # Opt-in sampled coalescing is a *different* (merged) stream than
        # serial, but still a pure function of seed and batch order.
        requests = make_requests(device, ghz6) + make_requests(device, ghz6)
        runs = []
        for workers in (1, 4):
            backend = ShardedBackend(
                LocalSamplingBackend(noise_model=noise_model, seed=5),
                workers=workers,
                coalesce=True,
            )
            runs.append(exact_dicts(backend.execute(requests)))
        assert runs[0] == runs[1]

    def test_process_executor_matches_thread(self, device, noise_model, ghz6):
        requests = make_requests(device, ghz6, trials=100)
        by_executor = []
        for executor in ("thread", "process"):
            backend = ShardedBackend(
                LocalSamplingBackend(noise_model=noise_model, seed=13),
                workers=2,
                executor=executor,
            )
            by_executor.append(exact_dicts(backend.execute(requests)))
        assert by_executor[0] == by_executor[1]

    def test_sampled_jigsaw_run_with_execute_workers(self, device, ghz6):
        serial = JigSaw(device, JigSawConfig(exact=False), seed=7)
        sharded = JigSaw(
            device, JigSawConfig(exact=False, execute_workers=4), seed=7
        )
        a = serial.run(ghz6, total_trials=4_096)
        b = sharded.run(ghz6, total_trials=4_096)
        assert a.output_pmf.as_dict() == b.output_pmf.as_dict()
        assert a.global_pmf.as_dict() == b.global_pmf.as_dict()

    def test_sampled_session_with_workers(self, device):
        workload = ghz(6)
        plain = Session(device, seed=3, exact=False, total_trials=4_096)
        fanned = Session(
            device, seed=3, exact=False, total_trials=4_096, workers=4
        )
        for scheme in ("baseline", "edm", "jigsaw", "jigsaw_m"):
            assert (
                plain.run_scheme(scheme, workload).as_dict()
                == fanned.run_scheme(scheme, workload).as_dict()
            ), scheme
        # close() releases every lazily created pool; the session stays
        # usable afterwards (pools re-materialise on demand).
        fanned.close()
        assert (
            plain.run_scheme("jigsaw", workload).as_dict()
            == fanned.run_scheme("jigsaw", workload).as_dict()
        )

    def test_sampled_jigsaw_m_with_workers(self, device, ghz6):
        serial = JigSawM(device, JigSawMConfig(exact=False), seed=9)
        sharded = JigSawM(
            device, JigSawMConfig(exact=False, execute_workers=3), seed=9
        )
        a = serial.run(ghz6, total_trials=8_192)
        b = sharded.run(ghz6, total_trials=8_192)
        assert a.output_pmf.as_dict() == b.output_pmf.as_dict()


class TestShardedValidation:
    def test_rejects_non_local_inner(self):
        with pytest.raises(SimulationError):
            ShardedBackend(object())

    def test_rejects_unknown_executor(self, noise_model):
        with pytest.raises(SimulationError):
            ShardedBackend(
                LocalExactBackend(noise_model=noise_model), executor="rayon"
            )

    def test_zero_trials_sampled_rejected(self, device, noise_model, ghz6):
        executable = transpile(ghz6, device, seed=0)
        backend = ShardedBackend(
            LocalSamplingBackend(noise_model=noise_model, seed=1), workers=2
        )
        with pytest.raises(SimulationError):
            backend.execute([ExecutionRequest(executable, 0)])

    def test_empty_batch(self, noise_model):
        backend = ShardedBackend(LocalExactBackend(noise_model=noise_model))
        assert backend.execute([]) == []

    def test_runner_backend_stats_persist_across_runs(self, device, ghz6):
        # The runner caches its resolved backend, so cumulative counters
        # (and the worker pool) survive across execute calls.
        runner = JigSaw(
            device, JigSawConfig(exact=True, execute_workers=2), seed=5
        )
        runner.run(ghz6, total_trials=8_192)
        runner.run(ghz6, total_trials=8_192)
        backend = runner._resolve_backend()
        assert backend.stats()["batches"] == 2
        assert backend is runner._resolve_backend()

    def test_stats_counters(self, device, noise_model, ghz6):
        requests = make_requests(device, ghz6) + make_requests(device, ghz6)
        backend = ShardedBackend(
            LocalExactBackend(noise_model=noise_model), workers=2
        )
        backend.execute(requests)
        stats = backend.stats()
        assert stats["requests"] == 8
        assert stats["groups"] == 4  # duplicates coalesced
        assert stats["coalesced_requests"] == 4
        assert stats["channel_evals"] == 4


class TestExecuteMany:
    def test_combined_batch_matches_per_plan_exact(self, device, ghz6):
        a = JigSaw(device, JigSawConfig(exact=True), seed=5)
        b = JigSaw(device, JigSawConfig(exact=True), seed=5)
        plans_a = [a.plan(ghz6, total_trials=t) for t in (8_192, 16_384)]
        plans_b = [b.plan(ghz6, total_trials=t) for t in (8_192, 16_384)]
        separate = [a.execute(plan) for plan in plans_a]
        combined = b.execute_many(plans_b)
        assert len(combined) == 2
        for lhs, rhs in zip(separate, combined):
            assert lhs.output_pmf.as_dict() == rhs.output_pmf.as_dict()
            assert rhs.total_trials == lhs.total_trials

    def test_execute_many_rejects_foreign_plan(self, device, ghz6):
        jigsaw = JigSaw(device, JigSawConfig(exact=True), seed=5)
        jigsaw_m = JigSawM(device, JigSawMConfig(exact=True), seed=5)
        plan = jigsaw.plan(ghz6, total_trials=16_384)
        from repro.exceptions import ReconstructionError

        with pytest.raises(ReconstructionError):
            jigsaw_m.execute_many([plan])


class TestBudgetConservation:
    """split_trials, plan_trial_budget, and run_edm agree and conserve."""

    @pytest.mark.parametrize("total", [1_001, 4_099, 16_383, 32_768])
    @pytest.mark.parametrize("num_cpms", [3, 6, 7, 16])
    def test_split_conserves_and_matches_runner(self, device, total, num_cpms):
        jigsaw = JigSaw(device, JigSawConfig(exact=True), seed=0)
        global_trials, per_cpm = jigsaw.split_trials(total, num_cpms)
        assert global_trials + per_cpm * num_cpms == total
        assert (global_trials, per_cpm) == split_trial_budget(
            total, num_cpms, 0.5
        )

    @pytest.mark.parametrize("total", [1_001, 4_099, 16_383])
    def test_plan_trial_budget_matches_split(self, total):
        report = plan_trial_budget(total, [2, 3], [6, 6])
        expected_global, expected_per = split_trial_budget(total, 12, 0.5)
        assert report["global_trials"] == expected_global
        assert report["trials_per_cpm"] == expected_per
        assert report["allocated_trials"] == total

    def test_budget_report_describes_executed_plan(self, device, ghz6):
        runner = JigSawM(device, JigSawMConfig(exact=True), seed=0)
        plan = runner.plan(ghz6, total_trials=16_383)
        report = budget_report_for_plan(plan)
        assert report["global_trials"] == plan.global_trials
        assert report["trials_per_cpm"] == plan.trials_per_cpm
        assert report["allocated_trials"] == plan.total_trials
        sizes = [layer["subset_size"] for layer in report["layers"]]
        assert sizes == [layer.subset_size for layer in plan.layers]
        # Size-aware: each layer is checked against its own minimum.
        minima = [layer["min_trials_needed"] for layer in report["layers"]]
        assert minima == sorted(minima) and len(set(minima)) == len(minima)

    def test_edm_weights_sum_to_budget(self, device):
        recorded = []

        class RecordingBackend(LocalExactBackend):
            def execute(self, requests):
                recorded.extend(requests)
                return super().execute(requests)

        total = 4_099  # not divisible by the 4-mapping ensemble
        session = Session(device, seed=0, exact=True, total_trials=total)
        session.backend = RecordingBackend(sampler=session.sampler)
        session.run_edm(ghz(6))
        assert sum(r.trials for r in recorded) == total
